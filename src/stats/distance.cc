#include "stats/distance.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/descriptive.h"

namespace rvar {

double SquaredL2(const std::vector<double>& a, const std::vector<double>& b) {
  RVAR_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double L2(const std::vector<double>& a, const std::vector<double>& b) {
  return std::sqrt(SquaredL2(a, b));
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  RVAR_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double KsDistance(std::vector<double> a, std::vector<double> b) {
  RVAR_CHECK(!a.empty() && !b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < a.size() && ib < b.size()) {
    const double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= x) ++ia;
    while (ib < b.size() && b[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::fabs(fa - fb));
  }
  return d;
}

double KsDistancePmf(const std::vector<double>& pmf_a,
                     const std::vector<double>& pmf_b) {
  RVAR_CHECK_EQ(pmf_a.size(), pmf_b.size());
  double ca = 0.0, cb = 0.0, d = 0.0;
  for (size_t i = 0; i < pmf_a.size(); ++i) {
    ca += pmf_a[i];
    cb += pmf_b[i];
    d = std::max(d, std::fabs(ca - cb));
  }
  return d;
}

std::vector<QqPoint> QqSeries(std::vector<double> actual,
                              std::vector<double> predicted,
                              int num_quantiles) {
  RVAR_CHECK(!actual.empty() && !predicted.empty());
  RVAR_CHECK_GT(num_quantiles, 0);
  std::sort(actual.begin(), actual.end());
  std::sort(predicted.begin(), predicted.end());
  std::vector<QqPoint> out;
  out.reserve(static_cast<size_t>(num_quantiles));
  for (int k = 1; k <= num_quantiles; ++k) {
    const double q = static_cast<double>(k) / (num_quantiles + 1);
    out.push_back({q, QuantileSorted(actual, q), QuantileSorted(predicted, q)});
  }
  return out;
}

double QqMeanAbsoluteError(std::vector<double> actual,
                           std::vector<double> predicted, int num_quantiles) {
  const std::vector<QqPoint> pts =
      QqSeries(std::move(actual), std::move(predicted), num_quantiles);
  double acc = 0.0;
  for (const QqPoint& p : pts) acc += std::fabs(p.actual - p.predicted);
  return acc / static_cast<double>(pts.size());
}

}  // namespace rvar
