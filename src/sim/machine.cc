#include "sim/machine.h"

#include "common/hash.h"

namespace rvar {
namespace sim {

double MachineNoise(uint64_t cluster_seed, int machine_id,
                    int64_t time_bucket) {
  uint64_t h = HashCombine(cluster_seed, static_cast<uint64_t>(machine_id));
  h = HashCombine(h, static_cast<uint64_t>(time_bucket));
  // Map to [-1, 1].
  return 2.0 * (static_cast<double>(h >> 11) * 0x1.0p-53) - 1.0;
}

}  // namespace sim
}  // namespace rvar
