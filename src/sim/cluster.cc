#include "sim/cluster.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace rvar {
namespace sim {
namespace {

constexpr double kSecondsPerDay = 86400.0;

double Clamp01Util(double u) { return std::clamp(u, 0.02, 0.98); }

}  // namespace

Cluster::Cluster(SkuCatalog catalog, ClusterConfig config)
    : catalog_(std::move(catalog)), config_(config) {}

Result<Cluster> Cluster::Make(const SkuCatalog& catalog,
                              const ClusterConfig& config) {
  if (config.mean_utilization <= 0.0 || config.mean_utilization >= 1.0) {
    return Status::InvalidArgument("mean_utilization must be in (0,1)");
  }
  if (config.diurnal_amplitude < 0.0 || config.load_imbalance < 0.0 ||
      config.noise_amplitude < 0.0) {
    return Status::InvalidArgument(
        "amplitudes and imbalance must be non-negative");
  }
  if (config.noise_period_seconds <= 0.0) {
    return Status::InvalidArgument("noise_period_seconds must be positive");
  }
  if (config.spare_exposure < 0.0 || config.spare_exposure > 1.0) {
    return Status::InvalidArgument("spare_exposure must be in [0,1]");
  }

  Cluster cluster(catalog, config);
  Rng rng(config.seed);
  cluster.by_sku_.resize(catalog.NumSkus());
  int id = 0;
  for (size_t s = 0; s < catalog.NumSkus(); ++s) {
    // Older SKUs run hotter (they host long-lived legacy placements) and
    // with a wider machine-to-machine spread.
    const double age = 1.0 - catalog.sku(s).speed;
    const double sku_offset = config.sku_heat_coupling * age;
    const double sku_spread = config.load_imbalance * (1.0 + age);
    for (int m = 0; m < catalog.sku(s).machine_count; ++m) {
      Machine machine;
      machine.id = id;
      machine.sku_index = static_cast<int>(s);
      machine.load_offset = sku_offset + rng.Normal(0.0, sku_spread);
      cluster.by_sku_[s].push_back(id);
      cluster.machines_.push_back(machine);
      ++id;
    }
  }
  return cluster;
}

const std::vector<int>& Cluster::MachinesOfSku(int sku_index) const {
  RVAR_CHECK(sku_index >= 0 &&
             static_cast<size_t>(sku_index) < by_sku_.size());
  return by_sku_[static_cast<size_t>(sku_index)];
}

double Cluster::BaselineUtilization(double t_seconds) const {
  // Daily peak at ~12:00, trough at ~00:00 simulated time.
  const double phase = 2.0 * M_PI * (t_seconds / kSecondsPerDay - 0.25);
  return config_.mean_utilization +
         config_.diurnal_amplitude * std::sin(phase);
}

double Cluster::MachineUtilization(int machine_id, double t_seconds) const {
  RVAR_CHECK(machine_id >= 0 &&
             static_cast<size_t>(machine_id) < machines_.size());
  const Machine& m = machines_[static_cast<size_t>(machine_id)];
  const int64_t bucket =
      static_cast<int64_t>(t_seconds / config_.noise_period_seconds);
  const double noise = config_.noise_amplitude *
                       MachineNoise(config_.seed, machine_id, bucket);
  return Clamp01Util(BaselineUtilization(t_seconds) + m.load_offset + noise);
}

void Cluster::SkuUtilization(int sku_index, double t_seconds, double* mean,
                             double* stddev) const {
  const std::vector<int>& ids = MachinesOfSku(sku_index);
  RVAR_CHECK(!ids.empty());
  // Subsample large SKU pools for cheap queries.
  const size_t step = std::max<size_t>(1, ids.size() / 64);
  double sum = 0.0, sumsq = 0.0;
  int n = 0;
  for (size_t i = 0; i < ids.size(); i += step) {
    const double u = MachineUtilization(ids[i], t_seconds);
    sum += u;
    sumsq += u * u;
    ++n;
  }
  const double mu = sum / n;
  if (mean != nullptr) *mean = mu;
  if (stddev != nullptr) {
    const double var = std::max(0.0, sumsq / n - mu * mu);
    *stddev = std::sqrt(var);
  }
}

double Cluster::SpareAvailability(double t_seconds) const {
  const double idle = 1.0 - BaselineUtilization(t_seconds);
  // Noise bucket shared across the cluster: spare supply flickers.
  const int64_t bucket =
      static_cast<int64_t>(t_seconds / config_.noise_period_seconds);
  const double noise =
      0.25 * MachineNoise(config_.seed ^ 0x5157ULL, -1, bucket);
  return std::clamp(config_.spare_exposure * idle * (1.0 + noise), 0.0, 1.0);
}

std::vector<int> Cluster::SamplePlacement(int count, double t_seconds,
                                          double greed, int preferred_sku,
                                          double preference,
                                          Rng* rng) const {
  RVAR_CHECK(rng != nullptr);
  RVAR_CHECK_GE(count, 0);
  std::vector<int> out;
  out.reserve(static_cast<size_t>(count));
  const int total = static_cast<int>(machines_.size());
  for (int k = 0; k < count; ++k) {
    const bool use_preferred =
        preferred_sku >= 0 && rng->Bernoulli(preference);
    const std::vector<int>* pool = nullptr;
    if (use_preferred) {
      pool = &MachinesOfSku(preferred_sku);
    }
    // Rejection-sample a lightly loaded machine: accept machine with
    // probability proportional to (1 - util)^greed.
    int chosen = -1;
    for (int attempt = 0; attempt < 8; ++attempt) {
      int candidate;
      if (pool != nullptr) {
        candidate = (*pool)[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(pool->size()) - 1))];
      } else {
        candidate = static_cast<int>(rng->UniformInt(0, total - 1));
      }
      const double idle = 1.0 - MachineUtilization(candidate, t_seconds);
      if (rng->Bernoulli(std::pow(idle, greed))) {
        chosen = candidate;
        break;
      }
      chosen = candidate;  // fall back to the last candidate
    }
    out.push_back(chosen);
  }
  return out;
}

}  // namespace sim
}  // namespace rvar
