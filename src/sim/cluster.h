// Copyright 2026 The rvar Authors.
//
// The simulated analytics cluster: a fleet of heterogeneous machines with a
// time-varying utilization field and a spare-token supply that shrinks as
// the cluster heats up. This is the substrate for the paper's "physical
// cluster environment" sources of variation (Section 3.2): machine load /
// noisy neighbors, load imbalance across machines, and the unpredictable
// availability of preemptible spare tokens.

#ifndef RVAR_SIM_CLUSTER_H_
#define RVAR_SIM_CLUSTER_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "sim/machine.h"
#include "sim/sku.h"

namespace rvar {
namespace sim {

/// \brief Knobs controlling the cluster environment.
struct ClusterConfig {
  /// Mean CPU utilization across the fleet.
  double mean_utilization = 0.55;
  /// Amplitude of the diurnal (time-of-day) utilization swing.
  double diurnal_amplitude = 0.15;
  /// Stddev of per-machine persistent load offsets (load imbalance). The
  /// Section 7.3 what-if sets this to 0.
  double load_imbalance = 0.10;
  /// Older (slower) SKUs run hotter and more uneven: a SKU's machines get
  /// a mean utilization offset of sku_heat_coupling * (1 - speed) and an
  /// offset spread scaled by (1 + (1 - speed)).
  double sku_heat_coupling = 0.60;
  /// Amplitude of fast per-machine noise.
  double noise_amplitude = 0.08;
  /// Seconds per noise bucket (machine noise is constant within a bucket).
  double noise_period_seconds = 300.0;
  /// Fraction of idle capacity exposed as preemptible spare tokens.
  double spare_exposure = 0.8;
  uint64_t seed = 1234;
};

/// \brief A fleet of machines with queryable utilization and spare-token
/// supply. Immutable after construction; all queries are deterministic.
class Cluster {
 public:
  /// Builds the fleet from a catalog. Fails on invalid config values.
  static Result<Cluster> Make(const SkuCatalog& catalog,
                              const ClusterConfig& config);

  const SkuCatalog& catalog() const { return catalog_; }
  const ClusterConfig& config() const { return config_; }
  const std::vector<Machine>& machines() const { return machines_; }

  /// Machines of one SKU (indices into machines()).
  const std::vector<int>& MachinesOfSku(int sku_index) const;

  /// Cluster-wide baseline utilization at time t (diurnal sinusoid).
  double BaselineUtilization(double t_seconds) const;

  /// CPU utilization of one machine at time t, in [0.02, 0.98].
  double MachineUtilization(int machine_id, double t_seconds) const;

  /// Mean and stddev of utilization across a SKU's machines at time t
  /// (subsampled for large fleets).
  void SkuUtilization(int sku_index, double t_seconds, double* mean,
                      double* stddev) const;

  /// Fraction in [0,1] of the spare-token pool available at time t: spare
  /// supply is the exposed idle capacity, so it is anti-correlated with
  /// load and carries its own noise.
  double SpareAvailability(double t_seconds) const;

  /// Samples `count` machine ids for vertex placement. The scheduler
  /// prefers lightly loaded machines: machines are drawn with weight
  /// (1 - utilization)^greed. If `preferred_sku` >= 0, a `preference`
  /// fraction of draws is confined to that SKU.
  std::vector<int> SamplePlacement(int count, double t_seconds,
                                   double greed, int preferred_sku,
                                   double preference, Rng* rng) const;

 private:
  Cluster(SkuCatalog catalog, ClusterConfig config);

  SkuCatalog catalog_;
  ClusterConfig config_;
  std::vector<Machine> machines_;
  std::vector<std::vector<int>> by_sku_;
};

}  // namespace sim
}  // namespace rvar

#endif  // RVAR_SIM_CLUSTER_H_
