// Copyright 2026 The rvar Authors.
//
// Workload model: recurring job groups and their instances. A job group is
// the paper's unit of analysis — (normalized name, plan signature) — and
// its instances differ in submission time, input data size (drifting up to
// ~50x within a group, Section 3.2), parameters, and the cluster conditions
// they encounter.

#ifndef RVAR_SIM_WORKLOAD_H_
#define RVAR_SIM_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "sim/plan.h"

namespace rvar {
namespace sim {

/// \brief Behavioral archetypes of recurring jobs. Production workloads
/// are a mix of distinct behavior types rather than a continuum — well
/// provisioned ETL, input-drifting reports, under-allocated jobs leaning
/// on spare tokens, straggler-prone pipelines, load-sensitive scans. The
/// archetype shapes a group's runtime-distribution type; it is workload
/// metadata, never exposed to the predictor's features.
enum class JobArchetype : int {
  kRockSolid = 0,     ///< tiny input drift, ample tokens, no spare usage
  kStable,            ///< modest drift and risk
  kMildDrifty,        ///< input sizes drift a few-fold
  kHeavyDrifty,       ///< input sizes drift by up to ~50x
  kSpareHungry,       ///< under-allocated; runtime rides spare availability
  kMildStraggler,     ///< occasional rare-event slowdowns
  kSevereStraggler,   ///< frequent heavy-tailed slowdowns
  kLoadSensitive,     ///< runtime strongly coupled to machine load
};
inline constexpr int kNumJobArchetypes = 8;
const char* JobArchetypeName(JobArchetype a);

/// \brief A recurring job template: everything instances share.
struct JobGroupSpec {
  int group_id = 0;
  std::string name;         ///< normalized job name
  JobArchetype archetype = JobArchetype::kStable;
  JobPlan plan;             ///< compiled plan (signature = group key part 2)
  double base_input_gb = 10.0;
  /// Lognormal sigma of per-instance input drift; ~1.3 gives the paper's
  /// up-to-50x observed input spread.
  double input_drift_sigma = 0.5;
  /// Tokens guaranteed to the job (user-specified allocation).
  int allocated_tokens = 50;
  /// Users over-allocate: actual peak need is allocation / this factor.
  double overallocation = 1.4;
  /// Whether the job opportunistically consumes preemptible spare tokens.
  bool uses_spare_tokens = true;
  /// Mean seconds between submissions.
  double period_seconds = 3600.0;
  /// Fraction of the simulated timeline that elapses before this group's
  /// first submission (new pipelines appear mid-stream in production;
  /// late starters have little or no history in D1).
  double start_fraction = 0.0;
  /// Relative jitter of the submission period.
  double period_jitter = 0.2;
  /// Susceptibility to rare slowdown events (disruptions, stragglers).
  double rare_event_prob = 0.01;
  /// How strongly machine load inflates this job's vertex times
  /// (multiplies the scheduler's contention_strength).
  double contention_sensitivity = 1.0;
  /// Placement greed override: how strongly this group's vertices seek
  /// idle machines (negative = use the scheduler's default). 0 models
  /// locality-constrained jobs stuck with whatever machines hold their
  /// data; large values model well-placed jobs.
  double placement_greed = -1.0;
  /// SKU the group's data placement is affined to, or -1 for none.
  int preferred_sku = -1;
  /// Strength of the SKU affinity in [0,1].
  double sku_preference = 0.6;
};

/// \brief One submission of a job group.
struct JobInstanceSpec {
  int group_id = 0;
  int64_t instance_id = 0;
  double submit_time = 0.0;  ///< seconds since interval start
  double input_gb = 0.0;     ///< actual input size for this run
};

/// \brief Knobs for generating a whole workload.
struct WorkloadConfig {
  int num_groups = 200;
  /// Simulated interval length in days.
  double interval_days = 15.0;
  PlanGeneratorConfig plan;
  /// Range of mean submission periods across groups (log-uniform), seconds.
  double min_period_seconds = 900.0;
  double max_period_seconds = 6.0 * 3600.0;
  uint64_t seed = 7;
};

/// \brief Generates job groups and their submission schedules.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  /// Draws `config.num_groups` diverse job groups. Group properties (input
  /// scale, tokens, spare usage, susceptibility, SKU affinity) are drawn
  /// from broad distributions so the workload spans the paper's behavioral
  /// spectrum. `num_skus` bounds preferred_sku.
  std::vector<JobGroupSpec> GenerateGroups(int num_skus);

  /// Expands groups into time-ordered instances over the interval.
  std::vector<JobInstanceSpec> GenerateInstances(
      const std::vector<JobGroupSpec>& groups);

 private:
  WorkloadConfig config_;
  Rng rng_;
};

}  // namespace sim
}  // namespace rvar

#endif  // RVAR_SIM_WORKLOAD_H_
