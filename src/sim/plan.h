// Copyright 2026 The rvar Authors.
//
// SCOPE-style compiled job plans: a DAG of relational operators with
// optimizer estimates. Recurring jobs are grouped by (normalized name,
// plan signature), where the signature is a hash computed recursively over
// the operator DAG — exactly the paper's grouping key (Section 3.1). The
// signature deliberately excludes input parameters and data sizes, which is
// why input drift becomes a *within-group* source of runtime variation.

#ifndef RVAR_SIM_PLAN_H_
#define RVAR_SIM_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace rvar {
namespace sim {

/// \brief Relational operator kinds appearing in compiled plans. The subset
/// mirrors the operators the paper calls out (Extract, Filter,
/// Index-Lookup, Window, Range, ...).
enum class OperatorType : int {
  kExtract = 0,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kWindow,
  kIndexLookup,
  kRange,
  kExchange,
  kUdf,
  kOutput,
};
inline constexpr int kNumOperatorTypes = 12;

/// Human-readable operator name.
const char* OperatorTypeName(OperatorType op);

/// Per-operator relative CPU cost of processing one unit of data.
double OperatorCostFactor(OperatorType op);

/// \brief One node of the operator DAG.
struct PlanNode {
  OperatorType op = OperatorType::kExtract;
  /// Indices of upstream nodes (data producers feeding this node).
  std::vector<int> inputs;
  /// Stage (pipeline-breaker level) this operator executes in.
  int stage = 0;
};

/// \brief A compiled job plan with optimizer estimates.
struct JobPlan {
  std::vector<PlanNode> nodes;  ///< topologically ordered
  int num_stages = 0;
  /// Optimizer cardinality estimate (rows), known at compile time; can be
  /// off from the true input by a wide margin.
  double estimated_cardinality = 0.0;
  /// Optimizer cost estimate (abstract units).
  double estimated_cost = 0.0;

  /// Count of operators per OperatorType (length kNumOperatorTypes).
  std::vector<int> OperatorCounts() const;

  /// Total relative work per unit of input data implied by the operators.
  double TotalCostFactor() const;

  /// Recursive structural hash over the DAG (operator types + shape); the
  /// job-group signature. Insensitive to estimates and parameters.
  uint64_t Signature() const;
};

/// \brief Knobs for random plan generation.
struct PlanGeneratorConfig {
  int min_operators = 5;
  int max_operators = 40;
  /// Probability that a generated operator is a UDF (SCOPE jobs are
  /// UDF-heavy).
  double udf_probability = 0.15;
  /// Probability of the variance-prone operators (Window, IndexLookup,
  /// Range) appearing.
  double exotic_probability = 0.12;
};

/// Generates a random but well-formed plan (single Extract roots, Output
/// sink, stage structure from pipeline breakers).
JobPlan GeneratePlan(const PlanGeneratorConfig& config, Rng* rng);

}  // namespace sim
}  // namespace rvar

#endif  // RVAR_SIM_PLAN_H_
