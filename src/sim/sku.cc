#include "sim/sku.h"

#include <set>

#include "common/strings.h"

namespace rvar {
namespace sim {

SkuCatalog SkuCatalog::Default() {
  std::vector<SkuSpec> skus = {
      {"Gen3", 0.70, 180, 16},  {"Gen3.5", 0.78, 260, 16},
      {"Gen4", 0.85, 420, 24},  {"Gen4.5", 0.92, 360, 24},
      {"Gen5", 1.00, 520, 32},  {"Gen5.2", 1.06, 380, 32},
      {"Gen6", 1.18, 220, 48},
  };
  auto catalog = Make(std::move(skus));
  return *catalog;  // the default catalog is valid by construction
}

Result<SkuCatalog> SkuCatalog::Make(std::vector<SkuSpec> skus) {
  if (skus.empty()) {
    return Status::InvalidArgument("catalog needs at least one SKU");
  }
  std::set<std::string> names;
  for (const SkuSpec& s : skus) {
    if (s.speed <= 0.0) {
      return Status::InvalidArgument(
          StrCat("SKU ", s.name, " has non-positive speed"));
    }
    if (s.machine_count <= 0 || s.tokens_per_machine <= 0) {
      return Status::InvalidArgument(
          StrCat("SKU ", s.name, " has non-positive capacity"));
    }
    if (!names.insert(s.name).second) {
      return Status::AlreadyExists(StrCat("duplicate SKU name ", s.name));
    }
  }
  SkuCatalog catalog;
  catalog.skus_ = std::move(skus);
  return catalog;
}

const SkuSpec& SkuCatalog::sku(size_t i) const {
  RVAR_CHECK_LT(i, skus_.size());
  return skus_[i];
}

int SkuCatalog::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < skus_.size(); ++i) {
    if (skus_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int SkuCatalog::TotalMachines() const {
  int total = 0;
  for (const SkuSpec& s : skus_) total += s.machine_count;
  return total;
}

int64_t SkuCatalog::TotalTokens() const {
  int64_t total = 0;
  for (const SkuSpec& s : skus_) {
    total += static_cast<int64_t>(s.machine_count) * s.tokens_per_machine;
  }
  return total;
}

}  // namespace sim
}  // namespace rvar
