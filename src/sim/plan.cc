#include "sim/plan.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace rvar {
namespace sim {

const char* OperatorTypeName(OperatorType op) {
  switch (op) {
    case OperatorType::kExtract:
      return "Extract";
    case OperatorType::kFilter:
      return "Filter";
    case OperatorType::kProject:
      return "Project";
    case OperatorType::kJoin:
      return "Join";
    case OperatorType::kAggregate:
      return "Aggregate";
    case OperatorType::kSort:
      return "Sort";
    case OperatorType::kWindow:
      return "Window";
    case OperatorType::kIndexLookup:
      return "IndexLookup";
    case OperatorType::kRange:
      return "Range";
    case OperatorType::kExchange:
      return "Exchange";
    case OperatorType::kUdf:
      return "Udf";
    case OperatorType::kOutput:
      return "Output";
  }
  return "Unknown";
}

double OperatorCostFactor(OperatorType op) {
  switch (op) {
    case OperatorType::kExtract:
      return 0.6;
    case OperatorType::kFilter:
      return 0.2;
    case OperatorType::kProject:
      return 0.15;
    case OperatorType::kJoin:
      return 1.4;
    case OperatorType::kAggregate:
      return 0.9;
    case OperatorType::kSort:
      return 1.2;
    case OperatorType::kWindow:
      return 1.6;
    case OperatorType::kIndexLookup:
      return 1.1;
    case OperatorType::kRange:
      return 0.8;
    case OperatorType::kExchange:
      return 0.7;
    case OperatorType::kUdf:
      return 1.8;
    case OperatorType::kOutput:
      return 0.4;
  }
  return 1.0;
}

namespace {

// Operators that break pipelines and start a new stage.
bool IsPipelineBreaker(OperatorType op) {
  switch (op) {
    case OperatorType::kJoin:
    case OperatorType::kAggregate:
    case OperatorType::kSort:
    case OperatorType::kWindow:
    case OperatorType::kExchange:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<int> JobPlan::OperatorCounts() const {
  std::vector<int> counts(kNumOperatorTypes, 0);
  for (const PlanNode& n : nodes) {
    counts[static_cast<size_t>(n.op)]++;
  }
  return counts;
}

double JobPlan::TotalCostFactor() const {
  double total = 0.0;
  for (const PlanNode& n : nodes) total += OperatorCostFactor(n.op);
  return total;
}

uint64_t JobPlan::Signature() const {
  // Recursive structural hash: each node's hash combines its operator type
  // with its inputs' hashes (topological order guarantees inputs first).
  std::vector<uint64_t> node_hash(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    uint64_t h = HashCombine(kFnvOffsetBasis,
                             static_cast<uint64_t>(nodes[i].op) + 1);
    for (int in : nodes[i].inputs) {
      RVAR_CHECK(in >= 0 && static_cast<size_t>(in) < i);
      h = HashCombine(h, node_hash[static_cast<size_t>(in)]);
    }
    node_hash[i] = h;
  }
  uint64_t sig = kFnvOffsetBasis;
  // Hash over the sinks (nodes no one consumes) for a DAG-level identity.
  std::vector<bool> consumed(nodes.size(), false);
  for (const PlanNode& n : nodes) {
    for (int in : n.inputs) consumed[static_cast<size_t>(in)] = true;
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!consumed[i]) sig = HashCombine(sig, node_hash[i]);
  }
  return sig;
}

JobPlan GeneratePlan(const PlanGeneratorConfig& config, Rng* rng) {
  RVAR_CHECK(rng != nullptr);
  RVAR_CHECK_GE(config.min_operators, 3);
  RVAR_CHECK_GE(config.max_operators, config.min_operators);

  const int target = static_cast<int>(
      rng->UniformInt(config.min_operators, config.max_operators));
  JobPlan plan;

  // 1-3 Extract roots.
  const int num_roots =
      static_cast<int>(rng->UniformInt(1, std::min(3, target - 2)));
  for (int r = 0; r < num_roots; ++r) {
    plan.nodes.push_back({OperatorType::kExtract, {}, 0});
  }

  // Middle operators, each consuming 1-2 existing nodes.
  const OperatorType common[] = {
      OperatorType::kFilter, OperatorType::kProject, OperatorType::kJoin,
      OperatorType::kAggregate, OperatorType::kSort,
      OperatorType::kExchange};
  const OperatorType exotic[] = {OperatorType::kWindow,
                                 OperatorType::kIndexLookup,
                                 OperatorType::kRange};
  while (static_cast<int>(plan.nodes.size()) < target - 1) {
    OperatorType op;
    if (rng->Bernoulli(config.udf_probability)) {
      op = OperatorType::kUdf;
    } else if (rng->Bernoulli(config.exotic_probability)) {
      op = exotic[static_cast<size_t>(rng->UniformInt(0, 2))];
    } else {
      op = common[static_cast<size_t>(rng->UniformInt(0, 5))];
    }
    PlanNode node;
    node.op = op;
    const int n = static_cast<int>(plan.nodes.size());
    const int fan_in = op == OperatorType::kJoin
                           ? 2
                           : static_cast<int>(rng->UniformInt(1, 1));
    for (int f = 0; f < fan_in && f < n; ++f) {
      // Prefer recent nodes to get a deep-ish DAG.
      const int lo = std::max(0, n - 6);
      int in = static_cast<int>(rng->UniformInt(lo, n - 1));
      if (std::find(node.inputs.begin(), node.inputs.end(), in) ==
          node.inputs.end()) {
        node.inputs.push_back(in);
      }
    }
    plan.nodes.push_back(std::move(node));
  }

  // Output sink consuming the last node.
  plan.nodes.push_back(
      {OperatorType::kOutput,
       {static_cast<int>(plan.nodes.size()) - 1},
       0});

  // Stage assignment: stage(node) = max over inputs of (input stage +
  // breaker), so pipeline breakers start new stages.
  int max_stage = 0;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    int stage = 0;
    for (int in : plan.nodes[i].inputs) {
      stage = std::max(stage, plan.nodes[static_cast<size_t>(in)].stage);
    }
    if (IsPipelineBreaker(plan.nodes[i].op) && !plan.nodes[i].inputs.empty()) {
      stage += 1;
    }
    plan.nodes[i].stage = stage;
    max_stage = std::max(max_stage, stage);
  }
  plan.num_stages = max_stage + 1;

  // Optimizer estimates: cardinality spans ~4 orders of magnitude; cost
  // couples cardinality with the plan's operator mix.
  plan.estimated_cardinality = rng->LogNormal(16.0, 2.0);  // ~9M rows median
  plan.estimated_cost =
      plan.estimated_cardinality * plan.TotalCostFactor() *
      rng->LogNormal(0.0, 0.3);
  return plan;
}

}  // namespace sim
}  // namespace rvar
