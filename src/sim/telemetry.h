// Copyright 2026 The rvar Authors.
//
// Telemetry storage: the joined view of job runs the paper assembles from
// Peregrine (plan features), execution logs (token skylines), and KEA
// (machine/SKU data) — Section 3.3. Runs are indexed by job group for the
// per-group distributional analyses.

#ifndef RVAR_SIM_TELEMETRY_H_
#define RVAR_SIM_TELEMETRY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sim/scheduler.h"

namespace rvar {
namespace sim {

/// \brief An append-only collection of executed job runs with a per-group
/// index.
class TelemetryStore {
 public:
  void Add(JobRun run);

  size_t NumRuns() const { return runs_.size(); }
  const std::vector<JobRun>& runs() const { return runs_; }
  const JobRun& run(size_t i) const;

  /// Group ids present, ascending.
  std::vector<int> GroupIds() const;

  /// Indices (into runs()) of one group's runs, in insertion order; empty
  /// for unknown groups.
  const std::vector<size_t>& RunsOfGroup(int group_id) const;

  /// Number of recorded runs for a group.
  int Support(int group_id) const;

  /// Group ids with at least `min_support` runs, ascending.
  std::vector<int> GroupsWithSupport(int min_support) const;

  /// The group's runtimes, in insertion order.
  std::vector<double> GroupRuntimes(int group_id) const;

  /// Serializes every run as CSV (header + one row per run; SKU columns
  /// named by `sku_names`, which must match the runs' vector lengths).
  /// Useful for re-plotting figures with external tooling.
  std::string ToCsv(const std::vector<std::string>& sku_names) const;

  /// Writes ToCsv() to a file.
  Status ExportCsv(const std::string& path,
                   const std::vector<std::string>& sku_names) const;

 private:
  std::vector<JobRun> runs_;
  std::unordered_map<int, std::vector<size_t>> by_group_;
  static const std::vector<size_t> kEmpty;
};

}  // namespace sim
}  // namespace rvar

#endif  // RVAR_SIM_TELEMETRY_H_
