// Copyright 2026 The rvar Authors.
//
// Telemetry storage: the joined view of job runs the paper assembles from
// Peregrine (plan features), execution logs (token skylines), and KEA
// (machine/SKU data) — Section 3.3. Runs are indexed by job group for the
// per-group distributional analyses.
//
// Production telemetry is not clean: joins drop records, clocks skew,
// deliveries duplicate. The store therefore has two ingestion paths:
// Add() appends trusted (simulator-produced) runs unconditionally, while
// Ingest() validates each run and quarantines corrupt ones — keeping the
// indexed view free of NaN/negative runtimes, duplicates, and
// missing-feature records, with exact queryable quarantine accounting.

#ifndef RVAR_SIM_TELEMETRY_H_
#define RVAR_SIM_TELEMETRY_H_

#include <array>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "sim/scheduler.h"

namespace rvar {
namespace sim {

/// \brief Why a run was rejected by TelemetryStore::Ingest.
enum class QuarantineReason : int {
  kNonFiniteRuntime = 0,  ///< NaN or infinite runtime
  kNegativeRuntime,       ///< runtime < 0 (clock skew, bad subtraction)
  kDuplicate,             ///< (group_id, instance_id) already stored
  kMissingFeatures,       ///< empty or non-finite feature columns
  kBadMetadata,           ///< non-finite input size / submit time
};
inline constexpr int kNumQuarantineReasons = 5;
const char* QuarantineReasonName(QuarantineReason reason);

/// \brief An append-only collection of executed job runs with a per-group
/// index.
class TelemetryStore {
 public:
  /// Appends a trusted run without validation (simulator output).
  void Add(JobRun run);

  /// Validates and appends one run. A corrupt run is quarantined — counted,
  /// retained for audit, excluded from every query — and the returned
  /// Status carries the reason (InvalidArgument for corrupt fields,
  /// AlreadyExists for duplicates). Ingestion order may be arbitrary;
  /// per-group views keep insertion order.
  Status Ingest(JobRun run);

  size_t NumRuns() const { return runs_.size(); }
  const std::vector<JobRun>& runs() const { return runs_; }
  const JobRun& run(size_t i) const;

  /// Runs rejected by Ingest, in rejection order.
  const std::vector<JobRun>& quarantined() const { return quarantined_; }
  size_t NumQuarantined() const { return quarantined_.size(); }
  int64_t QuarantineCount(QuarantineReason reason) const;

  /// Group ids present, ascending.
  std::vector<int> GroupIds() const;

  /// Indices (into runs()) of one group's runs, in insertion order; empty
  /// for unknown groups.
  const std::vector<size_t>& RunsOfGroup(int group_id) const;

  /// Number of recorded runs for a group.
  int Support(int group_id) const;

  /// Group ids with at least `min_support` runs, ascending.
  std::vector<int> GroupsWithSupport(int min_support) const;

  /// The group's runtimes, in insertion order.
  std::vector<double> GroupRuntimes(int group_id) const;

  /// Serializes every run as CSV (header + one row per run; SKU columns
  /// named by `sku_names`, which must match the runs' vector lengths).
  /// Useful for re-plotting figures with external tooling.
  std::string ToCsv(const std::vector<std::string>& sku_names) const;

  /// Writes ToCsv() to a file.
  Status ExportCsv(const std::string& path,
                   const std::vector<std::string>& sku_names) const;

  /// Parses a ToCsv()-format document back into a store (values at the
  /// exported precision). Strict: a missing or reordered header, a ragged
  /// row, or a non-numeric cell fails with InvalidArgument naming the
  /// offending row and column — never a silent misparse. Rows are
  /// installed via Ingest, so corrupt values in a well-formed CSV are
  /// quarantined rather than indexed.
  static Result<TelemetryStore> FromCsv(
      const std::string& csv, const std::vector<std::string>& sku_names);

  /// Reads FromCsv() from a file.
  static Result<TelemetryStore> ImportCsv(
      const std::string& path, const std::vector<std::string>& sku_names);

  /// Reinstalls checkpointed audit state (io/serialize.h): quarantined
  /// runs and their per-reason counts. Requires an empty audit (fresh
  /// store) and counts that sum to the quarantined run count.
  Status RestoreAudit(std::vector<JobRun> quarantined,
                      const std::array<int64_t, kNumQuarantineReasons>& counts);

 private:
  /// True if the run is storable; otherwise sets `reason`.
  bool Validate(const JobRun& run, QuarantineReason* reason) const;

  /// Stable identity key for duplicate detection.
  static uint64_t RunKey(const JobRun& run);

  std::vector<JobRun> runs_;
  std::unordered_map<int, std::vector<size_t>> by_group_;
  std::vector<JobRun> quarantined_;
  std::array<int64_t, kNumQuarantineReasons> quarantine_counts_{};
  std::unordered_set<uint64_t> seen_;
  static const std::vector<size_t> kEmpty;
};

}  // namespace sim
}  // namespace rvar

#endif  // RVAR_SIM_TELEMETRY_H_
