#include "sim/datasets.h"

#include "common/strings.h"

namespace rvar {
namespace sim {

int DatasetSlice::NumQualifyingGroups() const {
  return static_cast<int>(telemetry.GroupsWithSupport(min_support).size());
}

int64_t DatasetSlice::NumQualifyingInstances() const {
  int64_t total = 0;
  for (int gid : telemetry.GroupsWithSupport(min_support)) {
    total += telemetry.Support(gid);
  }
  return total;
}

const JobGroupSpec& StudySuite::group(int group_id) const {
  RVAR_CHECK(group_id >= 0 &&
             static_cast<size_t>(group_id) < groups.size());
  RVAR_CHECK_EQ(groups[static_cast<size_t>(group_id)].group_id, group_id);
  return groups[static_cast<size_t>(group_id)];
}

Result<StudySuite> BuildStudySuite(SuiteConfig config) {
  if (config.num_groups <= 0) {
    return Status::InvalidArgument("num_groups must be positive");
  }
  if (config.d1_days <= 0.0 || config.d2_days <= 0.0 ||
      config.d3_days <= 0.0) {
    return Status::InvalidArgument("all interval lengths must be positive");
  }

  StudySuite suite;
  suite.config = config;

  RVAR_ASSIGN_OR_RETURN(
      Cluster cluster, Cluster::Make(SkuCatalog::Default(), config.cluster));
  suite.cluster = std::make_shared<const Cluster>(std::move(cluster));

  // One continuous timeline covering all three intervals.
  WorkloadConfig wl = config.workload;
  wl.num_groups = config.num_groups;
  wl.interval_days = config.d1_days + config.d2_days + config.d3_days;
  wl.seed = config.seed;
  WorkloadGenerator generator(wl);
  suite.groups = generator.GenerateGroups(
      static_cast<int>(suite.cluster->catalog().NumSkus()));
  const std::vector<JobInstanceSpec> instances =
      generator.GenerateInstances(suite.groups);

  suite.d1 = {"D1", config.d1_days, config.d1_support, {}};
  suite.d2 = {"D2", config.d2_days, config.d2_support, {}};
  suite.d3 = {"D3", config.d3_days, config.d3_support, {}};

  TokenScheduler scheduler(suite.cluster.get(), config.scheduler);
  Rng rng(config.seed ^ 0x9E3779B97F4A7C15ULL);
  const double d1_end = config.d1_days * 86400.0;
  const double d2_end = d1_end + config.d2_days * 86400.0;
  for (const JobInstanceSpec& inst : instances) {
    const JobGroupSpec& group = suite.group(inst.group_id);
    RVAR_ASSIGN_OR_RETURN(JobRun run, scheduler.Execute(group, inst, &rng));
    if (inst.submit_time < d1_end) {
      suite.d1.telemetry.Add(std::move(run));
    } else if (inst.submit_time < d2_end) {
      suite.d2.telemetry.Add(std::move(run));
    } else {
      suite.d3.telemetry.Add(std::move(run));
    }
  }
  return suite;
}

}  // namespace sim
}  // namespace rvar
