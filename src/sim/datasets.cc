#include "sim/datasets.h"

#include "common/strings.h"

namespace rvar {
namespace sim {

int DatasetSlice::NumQualifyingGroups() const {
  return static_cast<int>(telemetry.GroupsWithSupport(min_support).size());
}

int64_t DatasetSlice::NumQualifyingInstances() const {
  int64_t total = 0;
  for (int gid : telemetry.GroupsWithSupport(min_support)) {
    total += telemetry.Support(gid);
  }
  return total;
}

const JobGroupSpec& StudySuite::group(int group_id) const {
  RVAR_CHECK(group_id >= 0 &&
             static_cast<size_t>(group_id) < groups.size());
  RVAR_CHECK_EQ(groups[static_cast<size_t>(group_id)].group_id, group_id);
  return groups[static_cast<size_t>(group_id)];
}

Result<StudySuite> BuildStudySuite(SuiteConfig config) {
  if (config.num_groups <= 0) {
    return Status::InvalidArgument("num_groups must be positive");
  }
  if (config.d1_days <= 0.0 || config.d2_days <= 0.0 ||
      config.d3_days <= 0.0) {
    return Status::InvalidArgument("all interval lengths must be positive");
  }

  StudySuite suite;
  suite.config = config;

  RVAR_ASSIGN_OR_RETURN(
      Cluster cluster, Cluster::Make(SkuCatalog::Default(), config.cluster));
  suite.cluster = std::make_shared<const Cluster>(std::move(cluster));

  // One continuous timeline covering all three intervals.
  WorkloadConfig wl = config.workload;
  wl.num_groups = config.num_groups;
  wl.interval_days = config.d1_days + config.d2_days + config.d3_days;
  wl.seed = config.seed;
  WorkloadGenerator generator(wl);
  suite.groups = generator.GenerateGroups(
      static_cast<int>(suite.cluster->catalog().NumSkus()));
  const std::vector<JobInstanceSpec> instances =
      generator.GenerateInstances(suite.groups);

  suite.d1 = {"D1", config.d1_days, config.d1_support, {}};
  suite.d2 = {"D2", config.d2_days, config.d2_support, {}};
  suite.d3 = {"D3", config.d3_days, config.d3_support, {}};

  // The fault plan is only materialized when a fault channel is active, so
  // the default configuration takes the untouched clean path.
  const bool faults_active = config.faults.AnyActive();
  FaultPlan fault_plan = *FaultPlan::Make(FaultPlanConfig{});
  if (faults_active) {
    RVAR_ASSIGN_OR_RETURN(fault_plan, FaultPlan::Make(config.faults));
  }

  TokenScheduler scheduler(suite.cluster.get(), config.scheduler,
                           faults_active ? &fault_plan : nullptr);
  Rng rng(config.seed ^ 0x9E3779B97F4A7C15ULL);
  const double d1_end = config.d1_days * 86400.0;
  const double d2_end = d1_end + config.d2_days * 86400.0;
  DatasetSlice* slices[] = {&suite.d1, &suite.d2, &suite.d3};
  std::vector<JobRun> slice_runs[3];
  for (const JobInstanceSpec& inst : instances) {
    const JobGroupSpec& group = suite.group(inst.group_id);
    Result<JobRun> run = scheduler.Execute(group, inst, &rng);
    if (!run.ok()) {
      // A job abandoned by the fault injector leaves no telemetry; any
      // other failure is a real configuration error.
      if (faults_active &&
          run.status().code() == StatusCode::kResourceExhausted) {
        ++suite.faults.failed_jobs;
        continue;
      }
      return run.status();
    }
    suite.faults.machine_faults += run->machine_faults;
    suite.faults.vertex_retries += run->vertex_retries;
    const int slice =
        inst.submit_time < d1_end ? 0 : (inst.submit_time < d2_end ? 1 : 2);
    slice_runs[slice].push_back(std::move(*run));
  }

  for (int s = 0; s < 3; ++s) {
    if (!faults_active) {
      for (JobRun& run : slice_runs[s]) {
        slices[s]->telemetry.Add(std::move(run));
      }
      continue;
    }
    TelemetryFaultStats stats;
    std::vector<JobRun> corrupted =
        fault_plan.CorruptTelemetry(std::move(slice_runs[s]), &stats);
    suite.faults.dropped_runs += stats.dropped;
    suite.faults.corrupted_runs += stats.NumCorrupt();
    suite.faults.reordered_runs += stats.reordered;
    for (JobRun& run : corrupted) {
      // Non-OK means quarantined; the store keeps the exact tally.
      slices[s]->telemetry.Ingest(std::move(run));
    }
    suite.faults.quarantined_runs +=
        static_cast<int64_t>(slices[s]->telemetry.NumQuarantined());
  }
  return suite;
}

}  // namespace sim
}  // namespace rvar
