// Copyright 2026 The rvar Authors.
//
// Fault injection: the rare events the paper blames for a large share of
// runtime variation (Section 3.2, Section 7) — machine failures and token
// revocations that kill in-flight vertices — plus the telemetry corruption
// that production pipelines must survive (dropped runs, NaN/negative
// runtimes, duplicated records, missing feature columns, out-of-order
// ingestion). A FaultPlan is a pure function of its seed: every fault
// decision is derived by hashing (seed, instance, stage, attempt), so the
// same plan replayed over the same workload yields bit-identical faults
// regardless of evaluation order.

#ifndef RVAR_SIM_FAULTS_H_
#define RVAR_SIM_FAULTS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/scheduler.h"

namespace rvar {
namespace sim {

/// \brief Rates and knobs of one composed fault scenario. All rates are
/// probabilities in [0, 1]; the default plan injects nothing.
struct FaultPlanConfig {
  uint64_t seed = 1;

  // --- Machine faults (consumed by TokenScheduler) ---
  /// Per stage-attempt probability that a machine failure kills the
  /// in-flight vertex wave, forcing a retry (or job failure).
  double machine_fault_rate = 0.0;
  /// Per-stage probability that the job's preemptible spare tokens are
  /// revoked for the remainder of the job.
  double token_revocation_rate = 0.0;

  // --- Telemetry faults (applied at ingestion time) ---
  /// Run never reaches the store (log loss).
  double drop_run_rate = 0.0;
  /// Run is ingested twice (at-least-once delivery).
  double duplicate_run_rate = 0.0;
  /// Runtime field is NaN (failed join / parse error).
  double nan_runtime_rate = 0.0;
  /// Runtime field is negative (clock skew, bad subtraction).
  double negative_runtime_rate = 0.0;
  /// Per-SKU feature columns are missing (partial join).
  double missing_columns_rate = 0.0;
  /// Maximum positional displacement of a run in the ingestion stream;
  /// 0 keeps the stream ordered.
  int reorder_window = 0;

  /// True if any fault channel is active.
  bool AnyActive() const;
};

/// \brief Tally of the telemetry faults CorruptTelemetry injected.
struct TelemetryFaultStats {
  int64_t dropped = 0;
  int64_t duplicated = 0;
  int64_t nan_runtime = 0;
  int64_t negative_runtime = 0;
  int64_t missing_columns = 0;
  /// Runs whose stream position moved relative to insertion order.
  int64_t reordered = 0;
  int64_t clean = 0;

  /// Runs that reach the store carrying an injected defect. Every one of
  /// these must end up quarantined by TelemetryStore::Ingest.
  int64_t NumCorrupt() const {
    return duplicated + nan_runtime + negative_runtime + missing_columns;
  }
};

/// \brief A deterministic, seeded fault scenario.
///
/// Machine-fault queries are pure functions usable from any evaluation
/// order; telemetry corruption is a batch transform over an ingestion
/// stream. Per-run fault kinds are mutually exclusive (one hash draw picks
/// at most one), which keeps the injected-fault accounting exact.
class FaultPlan {
 public:
  /// Validates rates (each in [0, 1]; telemetry rates must sum to <= 1 so
  /// the exclusive-fault partition is well formed).
  static Result<FaultPlan> Make(const FaultPlanConfig& config);

  const FaultPlanConfig& config() const { return config_; }

  /// Whether a machine failure kills attempt `attempt` of stage `stage` of
  /// instance `instance_id`.
  bool MachineFault(int64_t instance_id, int stage, int attempt) const;

  /// Fraction of the stage's work completed (and lost) when the fault in
  /// MachineFault struck; in [0, 1).
  double FaultFraction(int64_t instance_id, int stage, int attempt) const;

  /// Whether the job's spare tokens are revoked at the start of `stage`.
  bool SpareRevocation(int64_t instance_id, int stage) const;

  /// Per-run telemetry fault kinds.
  enum class TelemetryFault : int {
    kNone = 0,
    kDrop,
    kDuplicate,
    kNanRuntime,
    kNegativeRuntime,
    kMissingColumns,
  };

  /// The fault assigned to one run's telemetry record (keyed by identity,
  /// not stream position).
  TelemetryFault RunFault(int group_id, int64_t instance_id) const;

  /// Applies drop / duplicate / NaN / negative / missing-column faults and
  /// reorders the stream within `reorder_window`. Deterministic; `stats`
  /// (optional) receives the exact injected-fault tally.
  std::vector<JobRun> CorruptTelemetry(std::vector<JobRun> runs,
                                       TelemetryFaultStats* stats) const;

 private:
  explicit FaultPlan(const FaultPlanConfig& config) : config_(config) {}

  /// Uniform [0,1) draw keyed by (seed, salt, a, b, c).
  double Uniform(uint64_t salt, int64_t a, int64_t b, int64_t c) const;

  FaultPlanConfig config_;
};

/// \brief Deterministic storage corruption for the crash-safety tests
/// (io/): bit rot, torn writes, and at-least-once redelivery of WAL
/// records. Like FaultPlan, every decision is a pure hash of (seed, salt,
/// position), so the same plan reproduces byte-identical corruption.
/// Operates on opaque bytes and record indices only — sim stays
/// independent of the io on-disk formats.
class StorageFaultPlan {
 public:
  explicit StorageFaultPlan(uint64_t seed) : seed_(seed) {}

  uint64_t seed() const { return seed_; }

  /// Flips `num_flips` deterministically chosen bits anywhere in `bytes`
  /// (bit-rot model). Positions are drawn per (seed, salt, flip index);
  /// flipping twice with the same arguments restores the original.
  std::string FlipBits(std::string bytes, int num_flips,
                       uint64_t salt = 0) const;

  /// Removes a tail of `bytes`: a deterministic draw in (0, max_fraction]
  /// of the length, at least one byte when the input is non-empty (torn
  /// write model). `max_fraction` must be in [0, 1].
  std::string TruncateTail(std::string bytes, double max_fraction,
                           uint64_t salt = 0) const;

  /// An at-least-once, possibly out-of-order delivery schedule for
  /// `num_records` records: every index appears at least once, a
  /// `duplicate_rate` fraction appear twice, and records are displaced by
  /// up to `reorder_window` positions. With rate 0 and window 0, the
  /// schedule is the identity.
  std::vector<size_t> DeliverySchedule(size_t num_records,
                                       double duplicate_rate,
                                       int reorder_window,
                                       uint64_t salt = 0) const;

  /// In-place file corruption for the crash-safety chaos tests: reads
  /// `path`, applies FlipBits (when `num_flips` > 0) then TruncateTail
  /// (when `truncate_fraction` > 0), and rewrites the file with a plain
  /// non-atomic stream — a corrupted or torn artifact is exactly what the
  /// recovery path must survive. Deterministic per (seed, salt, size).
  Status CorruptFile(const std::string& path, int num_flips,
                     double truncate_fraction, uint64_t salt = 0) const;

 private:
  /// Uniform [0,1) draw keyed by (seed, salt, a, b).
  double Uniform(uint64_t salt, int64_t a, int64_t b) const;

  uint64_t seed_;
};

}  // namespace sim
}  // namespace rvar

#endif  // RVAR_SIM_FAULTS_H_
