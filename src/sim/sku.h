// Copyright 2026 The rvar Authors.
//
// Stock Keeping Units (SKUs): the heterogeneous machine generations of the
// simulated cluster. The paper's Cosmos cluster has 10-20 SKUs accumulated
// over a decade, with newer generations (Gen5/Gen6) processing data faster
// than older ones (Section 3.2, [83]); the what-if scenario of Section 7.2
// migrates vertices from Gen3.5 to Gen5.2.

#ifndef RVAR_SIM_SKU_H_
#define RVAR_SIM_SKU_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace rvar {
namespace sim {

/// \brief One machine generation.
struct SkuSpec {
  std::string name;
  /// Relative processing speed (Gen5 == 1.0); bigger is faster.
  double speed = 1.0;
  /// Number of machines of this SKU in the cluster.
  int machine_count = 0;
  /// Resource tokens one machine can host concurrently.
  int tokens_per_machine = 24;
};

/// \brief The cluster's SKU inventory.
class SkuCatalog {
 public:
  /// The default 7-generation catalog used across the study. Speeds grow
  /// with generation; the fleet is mid-heavy (most machines are Gen4-Gen5).
  static SkuCatalog Default();

  /// Builds a catalog from explicit specs; fails on empty input,
  /// non-positive speeds/counts, or duplicate names.
  static Result<SkuCatalog> Make(std::vector<SkuSpec> skus);

  size_t NumSkus() const { return skus_.size(); }
  const std::vector<SkuSpec>& skus() const { return skus_; }
  const SkuSpec& sku(size_t i) const;

  /// Index of the SKU named `name`, or -1.
  int IndexOf(const std::string& name) const;

  /// Total machines across all SKUs.
  int TotalMachines() const;

  /// Total token capacity across all SKUs.
  int64_t TotalTokens() const;

 private:
  std::vector<SkuSpec> skus_;
};

}  // namespace sim
}  // namespace rvar

#endif  // RVAR_SIM_SKU_H_
