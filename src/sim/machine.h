// Copyright 2026 The rvar Authors.
//
// Individual compute nodes. A machine's CPU utilization at a given time is
// a deterministic function of cluster-wide diurnal load, a per-machine
// skew offset (load imbalance), and hash-derived noise, so utilization
// queries are reproducible without simulating every machine continuously.

#ifndef RVAR_SIM_MACHINE_H_
#define RVAR_SIM_MACHINE_H_

#include <cstdint>

namespace rvar {
namespace sim {

/// \brief Static identity of one machine.
struct Machine {
  int id = 0;
  int sku_index = 0;
  /// Persistent utilization offset relative to the cluster baseline; the
  /// spread of these offsets is the cluster's load imbalance.
  double load_offset = 0.0;
};

/// Deterministic per-(machine, time-bucket) noise in [-1, 1], derived from
/// a hash so repeated queries agree.
double MachineNoise(uint64_t cluster_seed, int machine_id,
                    int64_t time_bucket);

}  // namespace sim
}  // namespace rvar

#endif  // RVAR_SIM_MACHINE_H_
