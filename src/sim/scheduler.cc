#include "sim/scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "sim/faults.h"
#include "stats/descriptive.h"

namespace rvar {
namespace sim {

namespace {

/// Surfaced-fault accounting: what the executed workload actually felt, as
/// opposed to what the FaultPlan injected (faults.cc). Abandons are the
/// runs that never became telemetry.
struct SchedulerMetrics {
  obs::Counter* jobs_total;
  obs::Counter* machine_faults_total;
  obs::Counter* vertex_retries_total;
  obs::Counter* jobs_abandoned_total;
  obs::Counter* spare_revocations_total;

  static const SchedulerMetrics& Get() {
    static const SchedulerMetrics metrics = [] {
      obs::Registry& r = obs::Registry::Default();
      return SchedulerMetrics{
          r.GetCounter("scheduler_jobs_total"),
          r.GetCounter("scheduler_machine_faults_total"),
          r.GetCounter("scheduler_vertex_retries_total"),
          r.GetCounter("scheduler_jobs_abandoned_total"),
          r.GetCounter("scheduler_spare_revocations_total")};
    }();
    return metrics;
  }
};

}  // namespace

TokenScheduler::TokenScheduler(const Cluster* cluster, SchedulerConfig config,
                               const FaultPlan* faults)
    : cluster_(cluster), config_(config), faults_(faults) {
  RVAR_CHECK(cluster != nullptr);
}

Result<JobRun> TokenScheduler::Execute(const JobGroupSpec& group,
                                       const JobInstanceSpec& instance,
                                       Rng* rng) const {
  RVAR_CHECK(rng != nullptr);
  if (group.allocated_tokens <= 0) {
    return Status::InvalidArgument(
        StrCat("group ", group.group_id, " has non-positive allocation"));
  }
  if (instance.input_gb <= 0.0 || !std::isfinite(instance.input_gb)) {
    return Status::InvalidArgument(
        StrCat("instance ", instance.instance_id, " has bad input size"));
  }
  if (group.plan.num_stages <= 0) {
    return Status::InvalidArgument(
        StrCat("group ", group.group_id, " has an empty plan"));
  }
  for (const PlanNode& node : group.plan.nodes) {
    if (node.stage < 0 || node.stage >= group.plan.num_stages) {
      return Status::InvalidArgument(
          StrCat("group ", group.group_id, " has a plan node in stage ",
                 node.stage, " outside [0,", group.plan.num_stages, ")"));
    }
  }

  const size_t num_skus = cluster_->catalog().NumSkus();
  const double t0 = instance.submit_time;

  JobRun run;
  run.group_id = group.group_id;
  run.instance_id = instance.instance_id;
  run.submit_time = t0;
  run.input_gb = instance.input_gb;
  run.num_stages = group.plan.num_stages;
  run.allocated_tokens = group.allocated_tokens;
  run.cluster_baseline_util = cluster_->BaselineUtilization(t0);
  run.spare_availability = cluster_->SpareAvailability(t0);
  run.sku_vertex_fraction.assign(num_skus, 0.0);
  run.sku_cpu_util.assign(num_skus, 0.0);
  for (size_t s = 0; s < num_skus; ++s) {
    cluster_->SkuUtilization(static_cast<int>(s), t0, &run.sku_cpu_util[s],
                             nullptr);
  }

  // Spare tokens: a fraction of the exposed pool, proportional to the
  // allocation and capped at spare_multiplier_cap * allocation.
  int spare_tokens = 0;
  if (config_.enable_spare_tokens && group.uses_spare_tokens) {
    const double cap =
        config_.spare_multiplier_cap * group.allocated_tokens;
    spare_tokens = static_cast<int>(cap * run.spare_availability *
                                    rng->Uniform(0.2, 1.0));
  }
  const int total_tokens = group.allocated_tokens + spare_tokens;

  // Startup overhead (compilation hand-off, container setup): small and
  // load-dependent but deterministic — runtime is measured from execution
  // start, so queueing randomness does not pollute it.
  double elapsed =
      2.0 + 4.0 * std::exp(3.0 * (run.cluster_baseline_util - 0.55));

  // Per-operator work shares per stage.
  std::vector<double> stage_cost(static_cast<size_t>(group.plan.num_stages),
                                 0.0);
  for (const PlanNode& node : group.plan.nodes) {
    stage_cost[static_cast<size_t>(node.stage)] +=
        OperatorCostFactor(node.op);
  }

  RunningStats util_stats;
  double token_seconds = 0.0, spare_token_seconds = 0.0;
  double slowest_stage = 0.0;
  size_t slowest_stage_idx = 0;

  // Per-vertex share of the per-SKU accounting.
  for (int s = 0; s < group.plan.num_stages; ++s) {
    // Partition (vertex) counts are fixed by the compiled plan — they are
    // part of the group's signature — sized for the group's typical input.
    // The *data* each vertex processes follows this instance's input, so
    // input drift flows into per-vertex work.
    const double planned_data =
        group.base_input_gb * std::pow(config_.stage_shrink, s);
    const double stage_data =
        instance.input_gb * std::pow(config_.stage_shrink, s);
    if (s > 0) run.temp_data_gb += stage_data;
    const int vertices = std::max(
        1, static_cast<int>(std::ceil(planned_data /
                                      config_.data_per_vertex_gb)));
    run.total_vertices += vertices;

    // A token revocation strips the spare tokens for the rest of the job;
    // vertices running on them are killed and re-planned at the guaranteed
    // allocation.
    if (faults_ != nullptr && !run.spare_revoked && spare_tokens > 0 &&
        faults_->SpareRevocation(instance.instance_id, s)) {
      run.spare_revoked = true;
      SchedulerMetrics::Get().spare_revocations_total->Increment();
    }
    const int tokens_now =
        run.spare_revoked ? group.allocated_tokens : total_tokens;
    const int parallelism = std::min(vertices, tokens_now);

    // Execute the stage wave; an injected machine fault kills the wave
    // part-way through (the partial work and held tokens are lost) and the
    // wave is re-placed and re-executed after an exponential backoff.
    double stage_time = 0.0;
    for (int attempt = 0;; ++attempt) {
      // Sample representative machines for this attempt's placement.
      const int sample = std::min(parallelism, config_.placement_sample);
      const double greed = group.placement_greed >= 0.0
                               ? group.placement_greed
                               : config_.placement_greed;
      const std::vector<int> placed = cluster_->SamplePlacement(
          sample, t0 + elapsed, greed, group.preferred_sku,
          group.sku_preference, rng);
      double speed_sum = 0.0, contention_sum = 0.0;
      for (int machine_id : placed) {
        const Machine& m =
            cluster_->machines()[static_cast<size_t>(machine_id)];
        const double util =
            cluster_->MachineUtilization(machine_id, t0 + elapsed);
        util_stats.Add(util);
        speed_sum += cluster_->catalog()
                         .sku(static_cast<size_t>(m.sku_index))
                         .speed;
        const double effective = std::min(
            0.92,
            config_.contention_strength * group.contention_sensitivity *
                util);
        contention_sum += 1.0 / (1.0 - effective);
        run.sku_vertex_fraction[static_cast<size_t>(m.sku_index)] +=
            static_cast<double>(vertices) / sample;
      }
      const double mean_speed = speed_sum / placed.size();
      const double mean_contention = contention_sum / placed.size();

      // Amdahl decomposition of the stage: a serial share (coordination,
      // skewed partitions, final merge) scales with the data regardless of
      // parallelism; the rest divides across the tokens held. Vertex-count
      // quantization is smoothed (vertex durations vary, so wave
      // boundaries blur in practice).
      const double total_work = stage_data *
                                stage_cost[static_cast<size_t>(s)] *
                                config_.seconds_per_gb;
      const double serial_work = config_.serial_fraction * total_work;
      const double parallel_work =
          (1.0 - config_.serial_fraction) * total_work / parallelism;
      stage_time =
          config_.stage_overhead_seconds +
          (serial_work + parallel_work) * mean_contention / mean_speed *
              rng->LogNormal(0.0, config_.noise_sigma);

      if (faults_ == nullptr ||
          !faults_->MachineFault(instance.instance_id, s, attempt)) {
        break;
      }
      ++run.machine_faults;
      // The wave dies part-way through the stage; the completed fraction
      // of the work is lost but its wall-clock and token-hold are not.
      const double lost =
          stage_time *
          faults_->FaultFraction(instance.instance_id, s, attempt);
      elapsed += lost;
      token_seconds += static_cast<double>(parallelism) * lost;
      spare_token_seconds +=
          static_cast<double>(
              std::max(0, parallelism - group.allocated_tokens)) *
          lost;
      SchedulerMetrics::Get().machine_faults_total->Increment();
      if (attempt >= config_.max_vertex_retries) {
        SchedulerMetrics::Get().jobs_abandoned_total->Increment();
        return Status::ResourceExhausted(StrCat(
            "instance ", instance.instance_id, " of group ", group.group_id,
            " abandoned after ", attempt + 1, " machine faults in stage ",
            s));
      }
      double backoff = config_.retry_backoff_seconds * std::pow(2.0, attempt);
      const double j = std::clamp(config_.retry_jitter, 0.0, 0.99);
      if (j > 0.0) {
        // A dedicated Rng keyed by the retry identity, not the simulation
        // stream: the main stream's draw sequence is untouched (replay of
        // fault-free runs is byte-identical to a jitter-free build), yet
        // the same (seed, instance, stage, attempt) always jitters the
        // same way.
        Rng jitter_rng(HashCombine(
            HashCombine(HashCombine(kFnvOffsetBasis,
                                    static_cast<uint64_t>(instance.instance_id)),
                        static_cast<uint64_t>(group.group_id)),
            (static_cast<uint64_t>(s) << 32) |
                static_cast<uint64_t>(attempt)));
        backoff *= jitter_rng.Uniform(1.0 - j, 1.0 + j);
      }
      elapsed += backoff;
      SchedulerMetrics::Get().vertex_retries_total->Increment();
      ++run.vertex_retries;
    }

    if (stage_time > slowest_stage) {
      slowest_stage = stage_time;
      slowest_stage_idx = run.skyline.size();
    }

    // Skyline: the job holds `used` tokens for this stage's duration.
    const int used = parallelism;
    run.skyline.push_back({elapsed, used});
    run.max_tokens_used = std::max(run.max_tokens_used, used);
    token_seconds += static_cast<double>(used) * stage_time;
    spare_token_seconds +=
        static_cast<double>(std::max(0, used - group.allocated_tokens)) *
        stage_time;
    elapsed += stage_time;
  }

  // Rare events (service disruptions, token revocation, network
  // degradation): hotter clusters disrupt more often. The hit stretches
  // the whole job by a heavy-tailed factor.
  (void)slowest_stage;
  (void)slowest_stage_idx;
  const double event_prob =
      group.rare_event_prob * (0.5 + run.cluster_baseline_util);
  if (rng->Bernoulli(std::min(event_prob, 0.5))) {
    run.rare_event = true;
    const double factor = std::min(rng->Pareto(4.0, config_.rare_event_alpha),
                                   config_.rare_event_max_factor);
    elapsed *= factor;
    // The job keeps holding its tokens through the stall.
    token_seconds *= factor;
    spare_token_seconds *= factor;
  }

  SchedulerMetrics::Get().jobs_total->Increment();
  run.runtime_seconds = elapsed;
  run.avg_tokens_used =
      elapsed > 0.0 ? token_seconds / elapsed : 0.0;
  run.avg_spare_tokens =
      elapsed > 0.0 ? spare_token_seconds / elapsed : 0.0;
  run.cpu_util_mean = util_stats.mean();
  run.cpu_util_std = util_stats.stddev();

  // Normalize SKU vertex fractions.
  double frac_total = 0.0;
  for (double f : run.sku_vertex_fraction) frac_total += f;
  if (frac_total > 0.0) {
    for (double& f : run.sku_vertex_fraction) f /= frac_total;
  }
  return run;
}

}  // namespace sim
}  // namespace rvar
