#include "sim/faults.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace rvar {
namespace sim {
namespace {

/// Injected-fault counter (one per channel) in the process registry. The
/// surfaced-side counters live in telemetry.cc (quarantine) and
/// scheduler.cc (retries/abandons); comparing the two ends is exactly the
/// injected-vs-surfaced audit the chaos tests do by hand.
obs::Counter* InjectedCounter(const char* kind) {
  return obs::Registry::Default().GetCounter("faults_injected_total", "kind",
                                             kind);
}

// Distinct salts per fault channel so their draws are independent.
constexpr uint64_t kSaltMachineFault = 0x4D46;   // "MF"
constexpr uint64_t kSaltFaultFraction = 0x4646;  // "FF"
constexpr uint64_t kSaltRevocation = 0x5256;     // "RV"
constexpr uint64_t kSaltTelemetry = 0x544C;      // "TL"
constexpr uint64_t kSaltReorder = 0x524F;        // "RO"
constexpr uint64_t kSaltBitFlip = 0x4246;        // "BF"
constexpr uint64_t kSaltTruncate = 0x5443;       // "TC"
constexpr uint64_t kSaltDelivery = 0x444C;       // "DL"
constexpr uint64_t kSaltDeliveryDup = 0x4444;    // "DD"

// murmur3 finalizer: FNV mixes well upward but weakly downward; this makes
// every output bit depend on every input bit.
uint64_t Finalize(uint64_t h) {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

bool RateValid(double r) { return std::isfinite(r) && r >= 0.0 && r <= 1.0; }

}  // namespace

bool FaultPlanConfig::AnyActive() const {
  return machine_fault_rate > 0.0 || token_revocation_rate > 0.0 ||
         drop_run_rate > 0.0 || duplicate_run_rate > 0.0 ||
         nan_runtime_rate > 0.0 || negative_runtime_rate > 0.0 ||
         missing_columns_rate > 0.0 || reorder_window > 0;
}

Result<FaultPlan> FaultPlan::Make(const FaultPlanConfig& config) {
  for (double rate :
       {config.machine_fault_rate, config.token_revocation_rate,
        config.drop_run_rate, config.duplicate_run_rate,
        config.nan_runtime_rate, config.negative_runtime_rate,
        config.missing_columns_rate}) {
    if (!RateValid(rate)) {
      return Status::InvalidArgument(
          StrCat("fault rate ", rate, " outside [0,1]"));
    }
  }
  const double telemetry_total =
      config.drop_run_rate + config.duplicate_run_rate +
      config.nan_runtime_rate + config.negative_runtime_rate +
      config.missing_columns_rate;
  if (telemetry_total > 1.0) {
    return Status::InvalidArgument(
        StrCat("telemetry fault rates sum to ", telemetry_total,
               " > 1; the per-run fault partition must fit in [0,1]"));
  }
  if (config.reorder_window < 0) {
    return Status::InvalidArgument("reorder_window must be >= 0");
  }
  return FaultPlan(config);
}

double FaultPlan::Uniform(uint64_t salt, int64_t a, int64_t b,
                          int64_t c) const {
  uint64_t h = kFnvOffsetBasis;
  h = HashCombine(h, config_.seed);
  h = HashCombine(h, salt);
  h = HashCombine(h, static_cast<uint64_t>(a));
  h = HashCombine(h, static_cast<uint64_t>(b));
  h = HashCombine(h, static_cast<uint64_t>(c));
  return static_cast<double>(Finalize(h) >> 11) * 0x1.0p-53;
}

bool FaultPlan::MachineFault(int64_t instance_id, int stage,
                             int attempt) const {
  if (config_.machine_fault_rate <= 0.0) return false;
  return Uniform(kSaltMachineFault, instance_id, stage, attempt) <
         config_.machine_fault_rate;
}

double FaultPlan::FaultFraction(int64_t instance_id, int stage,
                                int attempt) const {
  return Uniform(kSaltFaultFraction, instance_id, stage, attempt);
}

bool FaultPlan::SpareRevocation(int64_t instance_id, int stage) const {
  if (config_.token_revocation_rate <= 0.0) return false;
  return Uniform(kSaltRevocation, instance_id, stage, 0) <
         config_.token_revocation_rate;
}

FaultPlan::TelemetryFault FaultPlan::RunFault(int group_id,
                                              int64_t instance_id) const {
  const double u = Uniform(kSaltTelemetry, group_id, instance_id, 0);
  double edge = config_.drop_run_rate;
  if (u < edge) return TelemetryFault::kDrop;
  edge += config_.duplicate_run_rate;
  if (u < edge) return TelemetryFault::kDuplicate;
  edge += config_.nan_runtime_rate;
  if (u < edge) return TelemetryFault::kNanRuntime;
  edge += config_.negative_runtime_rate;
  if (u < edge) return TelemetryFault::kNegativeRuntime;
  edge += config_.missing_columns_rate;
  if (u < edge) return TelemetryFault::kMissingColumns;
  return TelemetryFault::kNone;
}

double StorageFaultPlan::Uniform(uint64_t salt, int64_t a, int64_t b) const {
  uint64_t h = kFnvOffsetBasis;
  h = HashCombine(h, seed_);
  h = HashCombine(h, salt);
  h = HashCombine(h, static_cast<uint64_t>(a));
  h = HashCombine(h, static_cast<uint64_t>(b));
  return static_cast<double>(Finalize(h) >> 11) * 0x1.0p-53;
}

std::string StorageFaultPlan::FlipBits(std::string bytes, int num_flips,
                                       uint64_t salt) const {
  RVAR_CHECK_GE(num_flips, 0);
  if (bytes.empty()) return bytes;
  const size_t num_bits = bytes.size() * 8;
  for (int flip = 0; flip < num_flips; ++flip) {
    const size_t bit = static_cast<size_t>(
        Uniform(kSaltBitFlip + salt, flip, 0) *
        static_cast<double>(num_bits));
    bytes[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bytes[bit / 8]) ^ (1u << (bit % 8)));
  }
  return bytes;
}

std::string StorageFaultPlan::TruncateTail(std::string bytes,
                                           double max_fraction,
                                           uint64_t salt) const {
  RVAR_CHECK(RateValid(max_fraction));
  if (bytes.empty() || max_fraction <= 0.0) return bytes;
  const double drawn =
      Uniform(kSaltTruncate + salt, static_cast<int64_t>(bytes.size()), 0) *
      max_fraction * static_cast<double>(bytes.size());
  const size_t cut =
      std::max<size_t>(1, static_cast<size_t>(drawn));
  bytes.resize(bytes.size() - std::min(cut, bytes.size()));
  return bytes;
}

std::vector<size_t> StorageFaultPlan::DeliverySchedule(
    size_t num_records, double duplicate_rate, int reorder_window,
    uint64_t salt) const {
  RVAR_CHECK(RateValid(duplicate_rate));
  RVAR_CHECK_GE(reorder_window, 0);
  // Jittered sort position per delivery; duplicates get an independent
  // second position, so a redelivered record can land far from the first.
  std::vector<std::pair<double, size_t>> keys;
  keys.reserve(num_records);
  const auto position = [&](size_t index, int64_t copy) {
    const double jitter =
        static_cast<double>(reorder_window) *
        Uniform(kSaltDelivery + salt, static_cast<int64_t>(index), copy);
    return static_cast<double>(index) + jitter;
  };
  for (size_t i = 0; i < num_records; ++i) {
    keys.push_back({position(i, 0), i});
    if (duplicate_rate > 0.0 &&
        Uniform(kSaltDeliveryDup + salt, static_cast<int64_t>(i), 0) <
            duplicate_rate) {
      keys.push_back({position(i, 1), i});
    }
  }
  std::stable_sort(keys.begin(), keys.end());
  std::vector<size_t> schedule;
  schedule.reserve(keys.size());
  for (const auto& [pos, index] : keys) schedule.push_back(index);
  return schedule;
}

Status StorageFaultPlan::CorruptFile(const std::string& path, int num_flips,
                                     double truncate_fraction,
                                     uint64_t salt) const {
  RVAR_CHECK_GE(num_flips, 0);
  RVAR_CHECK(RateValid(truncate_fraction));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::IOError(StrCat("cannot read ", path));
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  if (num_flips > 0) bytes = FlipBits(std::move(bytes), num_flips, salt);
  if (truncate_fraction > 0.0) {
    bytes = TruncateTail(std::move(bytes), truncate_fraction, salt);
  }
  // Deliberately non-atomic (truncating overwrite, no fsync/rename): the
  // point is to model the torn on-disk states AtomicWriteFile prevents.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError(StrCat("cannot write ", path));
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out) {
    return Status::IOError(StrCat("short write to ", path));
  }
  return Status::OK();
}

std::vector<JobRun> FaultPlan::CorruptTelemetry(
    std::vector<JobRun> runs, TelemetryFaultStats* stats) const {
  TelemetryFaultStats local;

  // Out-of-order ingestion: jitter each run's stream position by up to
  // reorder_window slots and stable-sort on the jittered key.
  if (config_.reorder_window > 0 && runs.size() > 1) {
    std::vector<std::pair<double, size_t>> keys;
    keys.reserve(runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      const double jitter =
          static_cast<double>(config_.reorder_window) *
          Uniform(kSaltReorder, runs[i].group_id, runs[i].instance_id, 0);
      keys.push_back({static_cast<double>(i) + jitter, i});
    }
    std::stable_sort(keys.begin(), keys.end());
    std::vector<JobRun> shuffled;
    shuffled.reserve(runs.size());
    for (size_t pos = 0; pos < keys.size(); ++pos) {
      if (keys[pos].second != pos) ++local.reordered;
      shuffled.push_back(std::move(runs[keys[pos].second]));
    }
    runs = std::move(shuffled);
  }

  std::vector<JobRun> out;
  out.reserve(runs.size());
  for (JobRun& run : runs) {
    switch (RunFault(run.group_id, run.instance_id)) {
      case TelemetryFault::kDrop:
        ++local.dropped;
        continue;
      case TelemetryFault::kDuplicate:
        ++local.duplicated;
        out.push_back(run);
        out.push_back(std::move(run));
        continue;
      case TelemetryFault::kNanRuntime:
        ++local.nan_runtime;
        run.runtime_seconds = std::nan("");
        break;
      case TelemetryFault::kNegativeRuntime:
        ++local.negative_runtime;
        run.runtime_seconds = -(run.runtime_seconds + 1.0);
        break;
      case TelemetryFault::kMissingColumns:
        ++local.missing_columns;
        run.sku_vertex_fraction.clear();
        run.sku_cpu_util.clear();
        break;
      case TelemetryFault::kNone:
        ++local.clean;
        break;
    }
    out.push_back(std::move(run));
  }
  static obs::Counter* const dropped = InjectedCounter("drop");
  static obs::Counter* const duplicated = InjectedCounter("duplicate");
  static obs::Counter* const nan_runtime = InjectedCounter("nan-runtime");
  static obs::Counter* const negative = InjectedCounter("negative-runtime");
  static obs::Counter* const missing = InjectedCounter("missing-columns");
  static obs::Counter* const reordered = InjectedCounter("reordered");
  dropped->Increment(local.dropped);
  duplicated->Increment(local.duplicated);
  nan_runtime->Increment(local.nan_runtime);
  negative->Increment(local.negative_runtime);
  missing->Increment(local.missing_columns);
  reordered->Increment(local.reordered);

  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace sim
}  // namespace rvar
