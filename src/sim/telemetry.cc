#include "sim/telemetry.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iterator>

#include "common/check.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace rvar {
namespace sim {

namespace {

/// Per-reason quarantine counters in the process registry, labeled with
/// the same reason names RecoveryReport-style accounting prints.
obs::Counter* QuarantineCounter(QuarantineReason reason) {
  static const std::array<obs::Counter*, kNumQuarantineReasons> counters = [] {
    std::array<obs::Counter*, kNumQuarantineReasons> c{};
    for (int i = 0; i < kNumQuarantineReasons; ++i) {
      c[static_cast<size_t>(i)] = obs::Registry::Default().GetCounter(
          "telemetry_quarantined_total", "reason",
          QuarantineReasonName(static_cast<QuarantineReason>(i)));
    }
    return c;
  }();
  return counters[static_cast<size_t>(reason)];
}

}  // namespace

const std::vector<size_t> TelemetryStore::kEmpty;

const char* QuarantineReasonName(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kNonFiniteRuntime:
      return "non-finite-runtime";
    case QuarantineReason::kNegativeRuntime:
      return "negative-runtime";
    case QuarantineReason::kDuplicate:
      return "duplicate";
    case QuarantineReason::kMissingFeatures:
      return "missing-features";
    case QuarantineReason::kBadMetadata:
      return "bad-metadata";
  }
  return "unknown";
}

uint64_t TelemetryStore::RunKey(const JobRun& run) {
  uint64_t h = kFnvOffsetBasis;
  h = HashCombine(h, static_cast<uint64_t>(run.group_id));
  h = HashCombine(h, static_cast<uint64_t>(run.instance_id));
  return h;
}

void TelemetryStore::Add(JobRun run) {
  seen_.insert(RunKey(run));
  by_group_[run.group_id].push_back(runs_.size());
  runs_.push_back(std::move(run));
}

bool TelemetryStore::Validate(const JobRun& run,
                              QuarantineReason* reason) const {
  if (std::isnan(run.runtime_seconds) || std::isinf(run.runtime_seconds)) {
    *reason = QuarantineReason::kNonFiniteRuntime;
    return false;
  }
  if (run.runtime_seconds < 0.0) {
    *reason = QuarantineReason::kNegativeRuntime;
    return false;
  }
  if (!std::isfinite(run.input_gb) || run.input_gb < 0.0 ||
      !std::isfinite(run.submit_time)) {
    *reason = QuarantineReason::kBadMetadata;
    return false;
  }
  auto columns_ok = [](const std::vector<double>& v) {
    if (v.empty()) return false;
    for (double x : v) {
      if (!std::isfinite(x)) return false;
    }
    return true;
  };
  if (!columns_ok(run.sku_vertex_fraction) || !columns_ok(run.sku_cpu_util)) {
    *reason = QuarantineReason::kMissingFeatures;
    return false;
  }
  if (seen_.count(RunKey(run)) > 0) {
    *reason = QuarantineReason::kDuplicate;
    return false;
  }
  return true;
}

Status TelemetryStore::Ingest(JobRun run) {
  static obs::Counter* const ingest_total =
      obs::Registry::Default().GetCounter("telemetry_ingest_total");
  ingest_total->Increment();
  QuarantineReason reason;
  if (Validate(run, &reason)) {
    Add(std::move(run));
    return Status::OK();
  }
  QuarantineCounter(reason)->Increment();
  quarantine_counts_[static_cast<size_t>(reason)]++;
  const std::string message =
      StrCat("run (group ", run.group_id, ", instance ", run.instance_id,
             ") quarantined: ", QuarantineReasonName(reason));
  quarantined_.push_back(std::move(run));
  return reason == QuarantineReason::kDuplicate
             ? Status::AlreadyExists(message)
             : Status::InvalidArgument(message);
}

int64_t TelemetryStore::QuarantineCount(QuarantineReason reason) const {
  return quarantine_counts_[static_cast<size_t>(reason)];
}

const JobRun& TelemetryStore::run(size_t i) const {
  RVAR_CHECK_LT(i, runs_.size());
  return runs_[i];
}

std::vector<int> TelemetryStore::GroupIds() const {
  std::vector<int> ids;
  ids.reserve(by_group_.size());
  for (const auto& [gid, _] : by_group_) ids.push_back(gid);
  std::sort(ids.begin(), ids.end());
  return ids;
}

const std::vector<size_t>& TelemetryStore::RunsOfGroup(int group_id) const {
  const auto it = by_group_.find(group_id);
  return it == by_group_.end() ? kEmpty : it->second;
}

int TelemetryStore::Support(int group_id) const {
  return static_cast<int>(RunsOfGroup(group_id).size());
}

std::vector<int> TelemetryStore::GroupsWithSupport(int min_support) const {
  std::vector<int> ids;
  for (const auto& [gid, idx] : by_group_) {
    if (static_cast<int>(idx.size()) >= min_support) ids.push_back(gid);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<double> TelemetryStore::GroupRuntimes(int group_id) const {
  std::vector<double> out;
  for (size_t i : RunsOfGroup(group_id)) {
    out.push_back(runs_[i].runtime_seconds);
  }
  return out;
}

std::string TelemetryStore::ToCsv(
    const std::vector<std::string>& sku_names) const {
  CsvWriter csv;
  std::vector<std::string> header = {
      "group_id",      "instance_id",    "submit_time",
      "runtime_s",     "rare_event",     "allocated_tokens",
      "max_tokens",    "avg_tokens",     "avg_spare_tokens",
      "input_gb",      "temp_data_gb",   "total_vertices",
      "num_stages",    "cpu_util_mean",  "cpu_util_std",
      "baseline_util", "spare_availability",
      "machine_faults", "vertex_retries", "spare_revoked"};
  for (const std::string& sku : sku_names) {
    header.push_back(StrCat("sku_frac_", sku));
  }
  for (const std::string& sku : sku_names) {
    header.push_back(StrCat("sku_util_", sku));
  }
  csv.AddRow(header);
  for (const JobRun& r : runs_) {
    RVAR_CHECK_EQ(r.sku_vertex_fraction.size(), sku_names.size());
    std::vector<std::string> row = {
        StrCat(r.group_id),
        StrCat(r.instance_id),
        FormatDouble(r.submit_time, 1),
        FormatDouble(r.runtime_seconds, 3),
        r.rare_event ? "1" : "0",
        StrCat(r.allocated_tokens),
        StrCat(r.max_tokens_used),
        FormatDouble(r.avg_tokens_used, 2),
        FormatDouble(r.avg_spare_tokens, 2),
        FormatDouble(r.input_gb, 3),
        FormatDouble(r.temp_data_gb, 3),
        StrCat(r.total_vertices),
        StrCat(r.num_stages),
        FormatDouble(r.cpu_util_mean, 4),
        FormatDouble(r.cpu_util_std, 4),
        FormatDouble(r.cluster_baseline_util, 4),
        FormatDouble(r.spare_availability, 4),
        StrCat(r.machine_faults),
        StrCat(r.vertex_retries),
        r.spare_revoked ? "1" : "0"};
    for (double f : r.sku_vertex_fraction) {
      row.push_back(FormatDouble(f, 4));
    }
    for (double u : r.sku_cpu_util) {
      row.push_back(FormatDouble(u, 4));
    }
    csv.AddRow(row);
  }
  return csv.contents();
}

Status TelemetryStore::ExportCsv(
    const std::string& path,
    const std::vector<std::string>& sku_names) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  out << ToCsv(sku_names);
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

namespace {

// The fixed (non-SKU) columns of ToCsv, in order.
const char* const kCsvColumns[] = {
    "group_id",      "instance_id",    "submit_time",
    "runtime_s",     "rare_event",     "allocated_tokens",
    "max_tokens",    "avg_tokens",     "avg_spare_tokens",
    "input_gb",      "temp_data_gb",   "total_vertices",
    "num_stages",    "cpu_util_mean",  "cpu_util_std",
    "baseline_util", "spare_availability",
    "machine_faults", "vertex_retries", "spare_revoked"};
constexpr size_t kNumCsvColumns = std::size(kCsvColumns);

}  // namespace

Result<TelemetryStore> TelemetryStore::FromCsv(
    const std::string& csv, const std::vector<std::string>& sku_names) {
  RVAR_ASSIGN_OR_RETURN(CsvTable table, CsvTable::Parse(csv));

  // The header must match the export layout exactly; a shifted or renamed
  // column means the positional parse below would read the wrong fields.
  std::vector<std::string> expected(kCsvColumns,
                                    kCsvColumns + kNumCsvColumns);
  for (const std::string& sku : sku_names) {
    expected.push_back(StrCat("sku_frac_", sku));
  }
  for (const std::string& sku : sku_names) {
    expected.push_back(StrCat("sku_util_", sku));
  }
  if (table.header() != expected) {
    return Status::InvalidArgument(
        StrCat("CSV header does not match the telemetry export layout for ",
               sku_names.size(), " SKUs (", table.num_columns(),
               " columns, expected ", expected.size(), ")"));
  }

  TelemetryStore store;
  const size_t num_skus = sku_names.size();
  for (size_t r = 0; r < table.num_rows(); ++r) {
    JobRun run;
    size_t c = 0;
    const auto next_int = [&]() -> Result<int64_t> {
      return table.IntegerCell(r, c++);
    };
    const auto next_num = [&]() -> Result<double> {
      return table.NumericCell(r, c++);
    };
    RVAR_ASSIGN_OR_RETURN(int64_t group_id, next_int());
    run.group_id = static_cast<int>(group_id);
    RVAR_ASSIGN_OR_RETURN(run.instance_id, next_int());
    RVAR_ASSIGN_OR_RETURN(run.submit_time, next_num());
    RVAR_ASSIGN_OR_RETURN(run.runtime_seconds, next_num());
    RVAR_ASSIGN_OR_RETURN(int64_t rare, next_int());
    run.rare_event = rare != 0;
    RVAR_ASSIGN_OR_RETURN(int64_t allocated, next_int());
    run.allocated_tokens = static_cast<int>(allocated);
    RVAR_ASSIGN_OR_RETURN(int64_t max_tokens, next_int());
    run.max_tokens_used = static_cast<int>(max_tokens);
    RVAR_ASSIGN_OR_RETURN(run.avg_tokens_used, next_num());
    RVAR_ASSIGN_OR_RETURN(run.avg_spare_tokens, next_num());
    RVAR_ASSIGN_OR_RETURN(run.input_gb, next_num());
    RVAR_ASSIGN_OR_RETURN(run.temp_data_gb, next_num());
    RVAR_ASSIGN_OR_RETURN(int64_t vertices, next_int());
    run.total_vertices = static_cast<int>(vertices);
    RVAR_ASSIGN_OR_RETURN(int64_t stages, next_int());
    run.num_stages = static_cast<int>(stages);
    RVAR_ASSIGN_OR_RETURN(run.cpu_util_mean, next_num());
    RVAR_ASSIGN_OR_RETURN(run.cpu_util_std, next_num());
    RVAR_ASSIGN_OR_RETURN(run.cluster_baseline_util, next_num());
    RVAR_ASSIGN_OR_RETURN(run.spare_availability, next_num());
    RVAR_ASSIGN_OR_RETURN(int64_t faults, next_int());
    run.machine_faults = static_cast<int>(faults);
    RVAR_ASSIGN_OR_RETURN(int64_t retries, next_int());
    run.vertex_retries = static_cast<int>(retries);
    RVAR_ASSIGN_OR_RETURN(int64_t revoked, next_int());
    run.spare_revoked = revoked != 0;
    run.sku_vertex_fraction.reserve(num_skus);
    for (size_t s = 0; s < num_skus; ++s) {
      RVAR_ASSIGN_OR_RETURN(double f, next_num());
      run.sku_vertex_fraction.push_back(f);
    }
    run.sku_cpu_util.reserve(num_skus);
    for (size_t s = 0; s < num_skus; ++s) {
      RVAR_ASSIGN_OR_RETURN(double u, next_num());
      run.sku_cpu_util.push_back(u);
    }
    // Well-formed CSV, but the values may still be hostile (negative
    // runtimes, duplicates): route through Ingest so they are quarantined
    // with exact accounting instead of silently indexed.
    (void)store.Ingest(std::move(run));
  }
  return store;
}

Result<TelemetryStore> TelemetryStore::ImportCsv(
    const std::string& path, const std::vector<std::string>& sku_names) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string csv((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed for " + path);
  return FromCsv(csv, sku_names);
}

Status TelemetryStore::RestoreAudit(
    std::vector<JobRun> quarantined,
    const std::array<int64_t, kNumQuarantineReasons>& counts) {
  if (!quarantined_.empty()) {
    return Status::FailedPrecondition(
        "RestoreAudit requires a store with an empty audit trail");
  }
  int64_t total = 0;
  for (int64_t count : counts) {
    if (count < 0) {
      return Status::InvalidArgument("quarantine counts must be >= 0");
    }
    total += count;
  }
  if (total != static_cast<int64_t>(quarantined.size())) {
    return Status::InvalidArgument(
        StrCat("quarantine counts sum to ", total, " but ",
               quarantined.size(), " quarantined runs were restored"));
  }
  quarantined_ = std::move(quarantined);
  quarantine_counts_ = counts;
  return Status::OK();
}

}  // namespace sim
}  // namespace rvar
