// Copyright 2026 The rvar Authors.
//
// End-to-end dataset construction: one continuous simulated timeline is
// split into the paper's three datasets (Table 1) — D1 (long interval,
// support >= 20) for discovering canonical distribution shapes, D2 for
// training the predictor, D3 for testing it. The same recurring job groups
// flow through all three, as in production.

#ifndef RVAR_SIM_DATASETS_H_
#define RVAR_SIM_DATASETS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/cluster.h"
#include "sim/faults.h"
#include "sim/scheduler.h"
#include "sim/telemetry.h"
#include "sim/workload.h"

namespace rvar {
namespace sim {

/// \brief One dataset slice (an interval of the simulated timeline).
struct DatasetSlice {
  std::string name;
  double interval_days = 0.0;
  int min_support = 3;
  TelemetryStore telemetry;

  /// Number of groups passing the support threshold.
  int NumQualifyingGroups() const;
  /// Total runs belonging to qualifying groups.
  int64_t NumQualifyingInstances() const;
};

/// \brief Scaled-down analogue of the paper's Table 1 study setup.
struct SuiteConfig {
  int num_groups = 150;
  double d1_days = 30.0;  ///< paper: 6 months
  double d2_days = 15.0;  ///< paper: 15 days
  double d3_days = 5.0;   ///< paper: 5 days
  int d1_support = 20;
  int d2_support = 3;
  int d3_support = 3;
  ClusterConfig cluster;
  SchedulerConfig scheduler;
  WorkloadConfig workload;
  /// Fault scenario applied across the timeline; the default (all rates
  /// zero) injects nothing and preserves the clean build path.
  FaultPlanConfig faults;
  uint64_t seed = 42;
};

/// \brief What the injected faults did to the simulated study.
struct FaultReport {
  int64_t machine_faults = 0;   ///< stage waves killed
  int64_t vertex_retries = 0;   ///< stage re-executions
  int64_t failed_jobs = 0;      ///< abandoned after exhausting retries
  int64_t dropped_runs = 0;     ///< telemetry records lost before ingest
  int64_t corrupted_runs = 0;   ///< records reaching ingest with defects
  int64_t reordered_runs = 0;   ///< records displaced in the stream
  int64_t quarantined_runs = 0; ///< records rejected at ingest
};

/// \brief The full simulated study: cluster, job groups, and the three
/// dataset slices.
struct StudySuite {
  SuiteConfig config;
  std::shared_ptr<const Cluster> cluster;
  std::vector<JobGroupSpec> groups;
  DatasetSlice d1;
  DatasetSlice d2;
  DatasetSlice d3;
  FaultReport faults;

  const JobGroupSpec& group(int group_id) const;
};

/// Simulates the whole timeline and splits it into D1/D2/D3. The slices are
/// contiguous: D1 = [0, d1), D2 = [d1, d1+d2), D3 = [d1+d2, d1+d2+d3).
Result<StudySuite> BuildStudySuite(SuiteConfig config);

}  // namespace sim
}  // namespace rvar

#endif  // RVAR_SIM_DATASETS_H_
