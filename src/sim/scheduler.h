// Copyright 2026 The rvar Authors.
//
// Token-based job execution. A job's vertices execute in stage order; each
// stage runs in waves bounded by the tokens the job holds (guaranteed
// allocation + opportunistic spare tokens, as in Cosmos/Apollo [7]). Stage
// time depends on the SKUs and load of the machines the vertices land on;
// rare events (stragglers, service disruptions) stretch a stage by a
// heavy-tailed factor. The result carries the full telemetry the paper's
// predictor consumes.

#ifndef RVAR_SIM_SCHEDULER_H_
#define RVAR_SIM_SCHEDULER_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "sim/cluster.h"
#include "sim/workload.h"

namespace rvar {
namespace sim {

/// \brief Scheduler/execution-model knobs.
struct SchedulerConfig {
  /// GB of input data processed by one vertex.
  double data_per_vertex_gb = 2.0;
  /// Seconds for one Gen5 vertex to process 1 GB at unit operator cost.
  double seconds_per_gb = 6.0;
  /// Data shrink factor from one stage to the next (aggregation etc.).
  double stage_shrink = 0.6;
  /// Amdahl serial share of each stage's work (coordination, skew, final
  /// merge) that does not parallelize across tokens.
  double serial_fraction = 0.008;
  /// Fixed per-stage scheduling overhead, seconds.
  double stage_overhead_seconds = 3.0;
  /// How strongly machine load inflates vertex time: factor is
  /// 1 / (1 - contention_strength * utilization).
  double contention_strength = 0.55;
  /// How aggressively placement prefers idle machines.
  double placement_greed = 1.5;
  /// Spare tokens usable, as a multiple of the allocation (production work
  /// caps this multiplier; Section 7.1).
  double spare_multiplier_cap = 4.0;
  /// Set false to globally disable spare tokens (Scenario 1).
  bool enable_spare_tokens = true;
  /// Scale of multiplicative lognormal runtime noise.
  double noise_sigma = 0.06;
  /// Pareto tail exponent of rare-event slowdowns (smaller = heavier).
  double rare_event_alpha = 0.95;
  /// Cap on the rare-event slowdown factor.
  double rare_event_max_factor = 60.0;
  /// Machines sampled per stage to estimate placement mix.
  int placement_sample = 48;
  /// Re-executions of a stage wave killed by an injected machine fault
  /// before the job is abandoned (0 = the first fault is fatal). Only
  /// consulted when a FaultPlan is attached.
  int max_vertex_retries = 3;
  /// Base of the exponential retry backoff, simulated seconds: retry k is
  /// re-dispatched after retry_backoff_seconds * 2^k.
  double retry_backoff_seconds = 8.0;
  /// Jitter half-width on the backoff, in [0, 0.99]: each retry's wait is
  /// scaled by a uniform draw from [1 - j, 1 + j], so simultaneous fault
  /// victims decorrelate instead of retrying as one storm. The draw comes
  /// from a dedicated Rng keyed by (instance, stage, attempt) — NOT the
  /// simulation stream — so replay stays bit-identical: the same seed
  /// yields the same jitter, and non-fault paths draw nothing at all.
  double retry_jitter = 0.5;
};

/// \brief Everything observed about one executed job instance: the ground
/// truth runtime plus the compile-time/submit-time features (Section 5.1).
struct JobRun {
  int group_id = 0;
  int64_t instance_id = 0;
  double submit_time = 0.0;

  // --- Outcome ---
  double runtime_seconds = 0.0;
  /// Whether a rare slowdown event hit this run.
  bool rare_event = false;
  /// Stage waves killed by injected machine faults.
  int machine_faults = 0;
  /// Stage re-executions after machine faults (bounded retries).
  int vertex_retries = 0;
  /// Whether spare tokens were revoked mid-job.
  bool spare_revoked = false;

  // --- Resource telemetry ---
  int allocated_tokens = 0;
  int max_tokens_used = 0;
  double avg_tokens_used = 0.0;
  double avg_spare_tokens = 0.0;
  /// Token usage over time: (start_second, token_count) steps.
  std::vector<std::pair<double, int>> skyline;

  // --- Job size telemetry ---
  double input_gb = 0.0;
  double temp_data_gb = 0.0;  ///< intermediate data across stages
  int total_vertices = 0;
  int num_stages = 0;

  // --- Placement / environment telemetry ---
  std::vector<double> sku_vertex_fraction;  ///< per SKU, sums to ~1
  std::vector<double> sku_cpu_util;         ///< per SKU mean util at submit
  double cpu_util_mean = 0.0;  ///< across the sampled placement machines
  double cpu_util_std = 0.0;
  double cluster_baseline_util = 0.0;
  double spare_availability = 0.0;
};

class FaultPlan;  // sim/faults.h

/// \brief Executes job instances against a Cluster.
class TokenScheduler {
 public:
  /// `cluster` (and `faults`, when non-null) must outlive the scheduler.
  /// With a FaultPlan attached, machine faults kill in-flight stage waves;
  /// the wave is re-executed after an exponential backoff, up to
  /// config.max_vertex_retries times, after which Execute fails with
  /// ResourceExhausted (the job is abandoned and yields no telemetry).
  TokenScheduler(const Cluster* cluster, SchedulerConfig config,
                 const FaultPlan* faults = nullptr);

  const SchedulerConfig& config() const { return config_; }

  /// Runs one instance of `group`, consuming randomness from `rng`.
  /// Fails if the group's allocation is non-positive or input is invalid.
  Result<JobRun> Execute(const JobGroupSpec& group,
                         const JobInstanceSpec& instance, Rng* rng) const;

 private:
  const Cluster* cluster_;
  SchedulerConfig config_;
  const FaultPlan* faults_;
};

}  // namespace sim
}  // namespace rvar

#endif  // RVAR_SIM_SCHEDULER_H_
