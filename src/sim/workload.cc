#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace rvar {
namespace sim {

const char* JobArchetypeName(JobArchetype a) {
  switch (a) {
    case JobArchetype::kRockSolid:
      return "rock-solid";
    case JobArchetype::kStable:
      return "stable";
    case JobArchetype::kMildDrifty:
      return "mild-drifty";
    case JobArchetype::kHeavyDrifty:
      return "heavy-drifty";
    case JobArchetype::kSpareHungry:
      return "spare-hungry";
    case JobArchetype::kMildStraggler:
      return "mild-straggler";
    case JobArchetype::kSevereStraggler:
      return "severe-straggler";
    case JobArchetype::kLoadSensitive:
      return "load-sensitive";
  }
  return "unknown";
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(config), rng_(config.seed) {}

std::vector<JobGroupSpec> WorkloadGenerator::GenerateGroups(int num_skus) {
  RVAR_CHECK_GT(num_skus, 0);
  // Archetype mix of the workload population.
  const std::vector<double> archetype_weights = {0.16, 0.20, 0.12, 0.10,
                                                 0.14, 0.10, 0.08, 0.10};
  std::vector<JobGroupSpec> groups;
  groups.reserve(static_cast<size_t>(config_.num_groups));
  for (int g = 0; g < config_.num_groups; ++g) {
    JobGroupSpec spec;
    spec.group_id = g;
    spec.name = StrCat("job_group_", g);
    spec.plan = GeneratePlan(config_.plan, &rng_);
    spec.archetype =
        static_cast<JobArchetype>(rng_.Categorical(archetype_weights));

    // Input scale spans small ETL jobs to multi-TB scans.
    spec.base_input_gb = rng_.LogNormal(3.0, 1.5);  // median ~20 GB

    // Archetype-specific behavior. Parameters are tight around each
    // archetype's center so group-level runtime distributions form
    // distinct types (as production workloads do) rather than a continuum.
    switch (spec.archetype) {
      case JobArchetype::kRockSolid:
        spec.input_drift_sigma = rng_.Uniform(0.028, 0.032);
        spec.overallocation = rng_.Uniform(1.9, 2.3);
        spec.uses_spare_tokens = false;
        spec.rare_event_prob = 1e-4;
        spec.contention_sensitivity = rng_.Uniform(0.34, 0.36);
        break;
      case JobArchetype::kStable:
        spec.input_drift_sigma = rng_.Uniform(0.115, 0.125);
        spec.overallocation = rng_.Uniform(1.5, 1.9);
        spec.uses_spare_tokens = rng_.Bernoulli(0.4);
        spec.rare_event_prob = 2e-3;
        spec.contention_sensitivity = rng_.Uniform(0.78, 0.82);
        // A quarter of otherwise-stable jobs are placed poorly: they run
        // on whatever machines come up (uneven, often hot) and suffer
        // contention for it. Their only observable distinction from their
        // well-placed siblings is the utilization environment — the lever
        // of the Section 7.3 what-if.
        if (rng_.Bernoulli(0.25)) {
          spec.placement_greed = 0.0;
          spec.contention_sensitivity = rng_.Uniform(1.55, 1.65);
        }
        break;
      case JobArchetype::kMildDrifty:
        spec.input_drift_sigma = rng_.Uniform(0.40, 0.44);
        spec.overallocation = rng_.Uniform(1.4, 1.8);
        spec.uses_spare_tokens = rng_.Bernoulli(0.5);
        spec.rare_event_prob = 3e-3;
        spec.contention_sensitivity = rng_.Uniform(0.78, 0.82);
        break;
      case JobArchetype::kHeavyDrifty:
        spec.input_drift_sigma = rng_.Uniform(1.00, 1.05);
        spec.overallocation = rng_.Uniform(1.4, 1.8);
        spec.uses_spare_tokens = rng_.Bernoulli(0.5);
        spec.rare_event_prob = 3e-3;
        spec.contention_sensitivity = rng_.Uniform(0.78, 0.82);
        break;
      case JobArchetype::kSpareHungry:
        // Big scan-heavy jobs with shallow plans and allocations well
        // below their parallelism needs: runtime rides the spare-token
        // supply, with little dilution from trailing narrow stages.
        spec.plan = GeneratePlan({.min_operators = 5, .max_operators = 12},
                                 &rng_);
        spec.base_input_gb = rng_.LogNormal(5.0, 0.6);  // large inputs
        spec.input_drift_sigma = rng_.Uniform(0.045, 0.055);
        spec.overallocation = rng_.Uniform(0.24, 0.26);
        // A third of under-allocated groups have spare tokens disabled
        // ("token-starved"): slow but consistent — the live counterpart of
        // the Section 7.1 counterfactual.
        spec.uses_spare_tokens = !rng_.Bernoulli(0.33);
        spec.rare_event_prob = 3e-3;
        spec.contention_sensitivity = rng_.Uniform(0.78, 0.82);
        break;
      case JobArchetype::kMildStraggler:
        spec.input_drift_sigma = rng_.Uniform(0.165, 0.175);
        spec.overallocation = rng_.Uniform(1.4, 1.8);
        spec.uses_spare_tokens = rng_.Bernoulli(0.5);
        spec.rare_event_prob = rng_.Uniform(0.075, 0.085);
        spec.contention_sensitivity = rng_.Uniform(0.78, 0.82);
        break;
      case JobArchetype::kSevereStraggler:
        spec.input_drift_sigma = rng_.Uniform(0.10, 0.14);
        spec.overallocation = rng_.Uniform(1.4, 1.8);
        spec.uses_spare_tokens = rng_.Bernoulli(0.5);
        spec.rare_event_prob = rng_.Uniform(0.24, 0.26);
        spec.contention_sensitivity = rng_.Uniform(0.78, 0.82);
        break;
      case JobArchetype::kLoadSensitive: {
        spec.input_drift_sigma = rng_.Uniform(0.10, 0.14);
        spec.overallocation = rng_.Uniform(1.4, 1.8);
        spec.uses_spare_tokens = rng_.Bernoulli(0.5);
        spec.rare_event_prob = 3e-3;
        spec.contention_sensitivity = rng_.Uniform(1.55, 1.65);
        // Data locality pins these scans to one end of the fleet: the
        // old, hot, uneven generations (wide runtimes) or the new, cool
        // ones (moderate) — the axis the Section 7.2 and 7.3 what-ifs
        // move along. Locality also fixes the placement: the job takes
        // the machines that hold its data rather than seeking idle ones.
        spec.placement_greed = 0.0;
        if (rng_.Bernoulli(0.5)) {
          spec.preferred_sku = rng_.Bernoulli(0.5) ? 0 : 1;  // Gen3 / 3.5
        } else {
          spec.preferred_sku = rng_.Bernoulli(0.5) ? 5 : 6;  // Gen5.2 / 6
        }
        spec.sku_preference = rng_.Uniform(0.85, 0.95);
        break;
      }
    }

    // Token allocation tracks the job's peak parallelism (first-stage
    // vertex count ~ input / 2 GB per vertex), quantized the way users
    // pick round numbers; over-allocation is the norm (AutoToken [63]).
    const double ideal_tokens = std::clamp(
        spec.base_input_gb * 0.5 * rng_.Uniform(0.9, 1.1), 2.0, 2000.0);
    spec.allocated_tokens = static_cast<int>(std::max(
        2.0,
        std::round(ideal_tokens * spec.overallocation / 5.0) * 5.0));

    spec.period_seconds =
        config_.min_period_seconds *
        std::pow(config_.max_period_seconds / config_.min_period_seconds,
                 rng_.Uniform());
    spec.period_jitter = rng_.Uniform(0.05, 0.35);
    // A quarter of the groups are newer pipelines that first appear
    // somewhere in the first 60% of the timeline.
    if (rng_.Bernoulli(0.25)) {
      spec.start_fraction = rng_.Uniform(0.0, 0.6);
    }

    // Some groups' data locality gives them a mild affinity to one of the
    // mid/new generations (affinity to the hot old generations is the
    // load-sensitive archetype's defining trait).
    if (spec.preferred_sku < 0 && rng_.Bernoulli(0.5)) {
      spec.preferred_sku = static_cast<int>(
          rng_.UniformInt(2, std::max(2, num_skus - 1)));
      spec.sku_preference = rng_.Uniform(0.55, 0.65);
    }
    groups.push_back(std::move(spec));
  }
  return groups;
}

std::vector<JobInstanceSpec> WorkloadGenerator::GenerateInstances(
    const std::vector<JobGroupSpec>& groups) {
  const double horizon = config_.interval_days * 86400.0;
  std::vector<JobInstanceSpec> instances;
  int64_t next_id = 0;
  for (const JobGroupSpec& group : groups) {
    // Random phase so groups are not synchronized; late starters begin
    // partway through the timeline.
    double t = group.start_fraction * horizon +
               rng_.Uniform(0.0, group.period_seconds);
    while (t < horizon) {
      JobInstanceSpec inst;
      inst.group_id = group.group_id;
      inst.instance_id = next_id++;
      inst.submit_time = t;
      inst.input_gb =
          group.base_input_gb * rng_.LogNormal(0.0, group.input_drift_sigma);
      instances.push_back(inst);
      const double gap =
          group.period_seconds *
          std::max(0.1, 1.0 + rng_.Normal(0.0, group.period_jitter));
      t += gap;
    }
  }
  std::sort(instances.begin(), instances.end(),
            [](const JobInstanceSpec& a, const JobInstanceSpec& b) {
              return a.submit_time < b.submit_time;
            });
  return instances;
}

}  // namespace sim
}  // namespace rvar
