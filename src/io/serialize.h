// Copyright 2026 The rvar Authors.
//
// Save/Load for the serving-state components: the shape library, the
// fitted ml models, the featurizer's per-group history, and the telemetry
// store. Each type gets its own snapshot PayloadKind and record layout
// (DESIGN.md §7); every Load goes through SnapshotReader (checksums) and
// the type's Restore factory (semantic invariants), so a load either
// reproduces the saved object exactly or returns a descriptive Status —
// it never crashes and never yields a half-valid object.

#ifndef RVAR_IO_SERIALIZE_H_
#define RVAR_IO_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/featurizer.h"
#include "core/shape_library.h"
#include "core/shape_service.h"
#include "io/codec.h"
#include "io/snapshot.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "sim/telemetry.h"
#include "stats/kll_sketch.h"

namespace rvar {
namespace io {

// Each Encode* returns a complete snapshot file image (header + records);
// Save* persists it atomically; Decode* validates the image and rebuilds
// the object; Load* reads the file and decodes. Decode reports the
// container-level defect through `defect` when non-null (kNone when the
// container was intact but the payload failed semantic validation).

std::string EncodeShapeLibrary(const core::ShapeLibrary& library);
Status SaveShapeLibrary(const core::ShapeLibrary& library,
                        const std::string& path);
Result<core::ShapeLibrary> DecodeShapeLibrary(
    std::string bytes, SnapshotDefect* defect = nullptr);
Result<core::ShapeLibrary> LoadShapeLibrary(const std::string& path);

std::string EncodeGbdtClassifier(const ml::GbdtClassifier& model);
Status SaveGbdtClassifier(const ml::GbdtClassifier& model,
                          const std::string& path);
Result<ml::GbdtClassifier> DecodeGbdtClassifier(
    std::string bytes, SnapshotDefect* defect = nullptr);
Result<ml::GbdtClassifier> LoadGbdtClassifier(const std::string& path);

std::string EncodeRandomForestClassifier(
    const ml::RandomForestClassifier& model);
Status SaveRandomForestClassifier(const ml::RandomForestClassifier& model,
                                  const std::string& path);
Result<ml::RandomForestClassifier> DecodeRandomForestClassifier(
    std::string bytes, SnapshotDefect* defect = nullptr);
Result<ml::RandomForestClassifier> LoadRandomForestClassifier(
    const std::string& path);

std::string EncodeRandomForestRegressor(
    const ml::RandomForestRegressor& model);
Status SaveRandomForestRegressor(const ml::RandomForestRegressor& model,
                                 const std::string& path);
Result<ml::RandomForestRegressor> DecodeRandomForestRegressor(
    std::string bytes, SnapshotDefect* defect = nullptr);
Result<ml::RandomForestRegressor> LoadRandomForestRegressor(
    const std::string& path);

/// The featurizer's learned per-group history (its only mutable state;
/// the feature schema itself is rebuilt from the group/catalog specs).
std::string EncodeFeaturizerState(const core::Featurizer& featurizer);
Status SaveFeaturizerState(const core::Featurizer& featurizer,
                           const std::string& path);
/// Decodes into an already-constructed featurizer via RestoreHistory.
Status DecodeFeaturizerState(std::string bytes, core::Featurizer* featurizer,
                             SnapshotDefect* defect = nullptr);
Status LoadFeaturizerState(const std::string& path,
                           core::Featurizer* featurizer);

/// Runs round-trip through Ingest on decode, so a snapshot whose records
/// pass the checksums but hold semantically corrupt runs fails the load
/// instead of silently indexing bad data. The audit trail (quarantined
/// runs + per-reason counts) round-trips too.
std::string EncodeTelemetryStore(const sim::TelemetryStore& store);
Status SaveTelemetryStore(const sim::TelemetryStore& store,
                          const std::string& path);
Result<sim::TelemetryStore> DecodeTelemetryStore(
    std::string bytes, SnapshotDefect* defect = nullptr);
Result<sim::TelemetryStore> LoadTelemetryStore(const std::string& path);

/// The ShapeService's per-group state (discounted log-likelihood sums,
/// observation/clamp counters, and the group's KLL quantile sketch), so
/// online serving state survives restart alongside the model. Encode exports a
/// point-in-time cut of the live service; Decode yields the group states
/// in the form ShapeService::RestoreState takes, validated down to
/// finiteness by the restore path. The image is shard-count independent:
/// ExportState merges per-shard snapshots deterministically (ascending
/// group id), so a service running S shards restores bit-identically into
/// one running any other shard count.
std::string EncodeShapeServiceState(const core::ShapeService& service);
Status SaveShapeServiceState(const core::ShapeService& service,
                             const std::string& path);
Result<std::vector<core::ShapeService::GroupState>> DecodeShapeServiceState(
    std::string bytes, SnapshotDefect* defect = nullptr);
Result<std::vector<core::ShapeService::GroupState>> LoadShapeServiceState(
    const std::string& path);

/// KLL sketch wire format (DESIGN.md §15), embedded inside a record that
/// is already being written/read: fixed scalars (k, n, min/max as float
/// bit patterns, compaction parity), then the per-level retained counts,
/// then every retained item as a float bit pattern in storage order
/// (highest level first). Decode funnels through KllSketch::Restore, so a
/// corrupt or hostile encoding yields InvalidArgument, never a sketch
/// that misbehaves later; bounds are checked before any allocation.
void EncodeKllSketchInto(const KllSketch& sketch, BinaryWriter* w);
Result<KllSketch> DecodeKllSketchFrom(BinaryReader* r);

/// Standalone snapshot container (PayloadKind::kKllSketch) around one
/// sketch — the unit the codec-robustness suite attacks with bit flips
/// and truncation.
std::string EncodeKllSketch(const KllSketch& sketch);
Status SaveKllSketch(const KllSketch& sketch, const std::string& path);
Result<KllSketch> DecodeKllSketch(std::string bytes,
                                  SnapshotDefect* defect = nullptr);
Result<KllSketch> LoadKllSketch(const std::string& path);

}  // namespace io
}  // namespace rvar

#endif  // RVAR_IO_SERIALIZE_H_
