// Copyright 2026 The rvar Authors.
//
// CRC-32 (IEEE 802.3 polynomial, reflected) for on-disk record integrity.
// Every snapshot and WAL record carries the CRC of its payload so torn
// writes and bit rot are detected record-by-record rather than poisoning
// the whole file. Table-driven, incremental (a running CRC can be extended
// chunk by chunk), and stable across platforms.

#ifndef RVAR_IO_CRC32_H_
#define RVAR_IO_CRC32_H_

#include <cstdint>
#include <string_view>

namespace rvar {
namespace io {

/// CRC-32 of `bytes`, continuing from `seed` (pass a previous result to
/// checksum data delivered in chunks; the default starts a fresh CRC).
uint32_t Crc32(std::string_view bytes, uint32_t seed = 0);

/// Masked CRC in the LevelDB/RocksDB style: storing a raw CRC of data that
/// itself embeds CRCs makes accidental fixed points more likely, so stored
/// checksums are rotated and offset.
uint32_t MaskCrc32(uint32_t crc);
uint32_t UnmaskCrc32(uint32_t masked);

}  // namespace io
}  // namespace rvar

#endif  // RVAR_IO_CRC32_H_
