#include "io/model_registry.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/strings.h"
#include "io/codec.h"
#include "io/crc32.h"
#include "io/serialize.h"
#include "io/snapshot.h"

namespace rvar {
namespace io {
namespace {

namespace fs = std::filesystem;

constexpr const char* kModelPrefix = "model-";
constexpr const char* kManifestPrefix = "manifest-";
constexpr const char* kActiveName = "ACTIVE";

std::string NumberedName(const char* prefix, int64_t id) {
  std::string digits = StrCat(id);
  while (digits.size() < 6) digits.insert(digits.begin(), '0');
  return StrCat(prefix, digits);
}

/// Parses `<prefix><digits>`; -1 when the name does not match.
int64_t ParseSuffix(const std::string& name, const char* prefix) {
  const std::string p(prefix);
  if (name.size() <= p.size() || name.compare(0, p.size(), p) != 0) return -1;
  int64_t value = 0;
  for (size_t i = p.size(); i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

std::string EncodeManifestImage(const ModelManifest& m) {
  SnapshotWriter snap(PayloadKind::kModelManifest);
  BinaryWriter w;
  w.PutI64(m.version);
  w.PutI64(m.parent_version);
  w.PutU64(m.seed);
  w.PutU64(m.window_begin);
  w.PutU64(m.window_end);
  w.PutU64(m.num_rows);
  w.PutU32(static_cast<uint32_t>(m.state));
  w.PutString(m.reason);
  w.PutDouble(m.holdout_logloss);
  w.PutDouble(m.agreement);
  w.PutU32(m.model_crc);
  w.PutU64(m.model_size);
  snap.AddRecord(w.bytes());
  return snap.Finish();
}

Result<ModelManifest> DecodeManifestImage(std::string bytes) {
  RVAR_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      SnapshotReader::Open(std::move(bytes), PayloadKind::kModelManifest));
  if (reader.num_records() != 1) {
    return Status::InvalidArgument(
        StrCat("manifest snapshot holds ", reader.num_records(),
               " records, layout needs exactly 1"));
  }
  RVAR_ASSIGN_OR_RETURN(std::string_view rec, reader.Record(0));
  BinaryReader r(rec);
  ModelManifest m;
  RVAR_ASSIGN_OR_RETURN(m.version, r.ReadI64());
  RVAR_ASSIGN_OR_RETURN(m.parent_version, r.ReadI64());
  RVAR_ASSIGN_OR_RETURN(m.seed, r.ReadU64());
  RVAR_ASSIGN_OR_RETURN(m.window_begin, r.ReadU64());
  RVAR_ASSIGN_OR_RETURN(m.window_end, r.ReadU64());
  RVAR_ASSIGN_OR_RETURN(m.num_rows, r.ReadU64());
  uint32_t state = 0;
  RVAR_ASSIGN_OR_RETURN(state, r.ReadU32());
  if (state > static_cast<uint32_t>(ModelState::kQuarantined)) {
    return Status::InvalidArgument(StrCat("unknown model state tag ", state));
  }
  m.state = static_cast<ModelState>(state);
  RVAR_ASSIGN_OR_RETURN(m.reason, r.ReadString());
  RVAR_ASSIGN_OR_RETURN(m.holdout_logloss, r.ReadDouble());
  RVAR_ASSIGN_OR_RETURN(m.agreement, r.ReadDouble());
  RVAR_ASSIGN_OR_RETURN(m.model_crc, r.ReadU32());
  RVAR_ASSIGN_OR_RETURN(m.model_size, r.ReadU64());
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        StrCat("manifest record has ", r.remaining(), " trailing bytes"));
  }
  if (m.version < 1) {
    return Status::InvalidArgument(
        StrCat("manifest version ", m.version, " must be >= 1"));
  }
  return m;
}

std::string EncodeActivePointer(int64_t version) {
  SnapshotWriter snap(PayloadKind::kActivePointer);
  BinaryWriter w;
  w.PutI64(version);
  snap.AddRecord(w.bytes());
  return snap.Finish();
}

Result<int64_t> DecodeActivePointer(std::string bytes) {
  RVAR_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      SnapshotReader::Open(std::move(bytes), PayloadKind::kActivePointer));
  if (reader.num_records() != 1) {
    return Status::InvalidArgument("ACTIVE pointer must hold one record");
  }
  RVAR_ASSIGN_OR_RETURN(std::string_view rec, reader.Record(0));
  BinaryReader r(rec);
  RVAR_ASSIGN_OR_RETURN(int64_t version, r.ReadI64());
  if (!r.AtEnd()) {
    return Status::InvalidArgument("ACTIVE pointer has trailing bytes");
  }
  return version;
}

}  // namespace

const char* ModelStateName(ModelState state) {
  switch (state) {
    case ModelState::kCandidate:
      return "candidate";
    case ModelState::kActive:
      return "active";
    case ModelState::kRetired:
      return "retired";
    case ModelState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

std::string ModelManifest::ToString() const {
  std::string out =
      StrCat("v", version, " [", ModelStateName(state), "] parent=",
             parent_version, " seed=", seed, " window=[", window_begin, ",",
             window_end, ") rows=", num_rows);
  if (!reason.empty()) out += StrCat(" reason=\"", reason, "\"");
  return out;
}

Result<ModelRegistry> ModelRegistry::Open(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError(StrCat("cannot create ", dir, ": ", ec.message()));
  }
  ModelRegistry registry(dir);
  int64_t max_seen = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (int64_t v = ParseSuffix(name, kManifestPrefix); v >= 0) {
      max_seen = std::max(max_seen, v);
      Result<std::string> bytes = ReadFileToString(entry.path().string());
      if (!bytes.ok()) {
        ++registry.num_corrupt_manifests_;
        continue;
      }
      Result<ModelManifest> manifest = DecodeManifestImage(std::move(*bytes));
      if (!manifest.ok() || manifest->version != v) {
        ++registry.num_corrupt_manifests_;
        continue;
      }
      registry.manifests_.emplace(v, std::move(*manifest));
    } else if (int64_t m = ParseSuffix(name, kModelPrefix); m >= 0) {
      // Artifacts without an intact manifest still pin the high-water mark
      // so a crashed half-written version's id is never reused.
      max_seen = std::max(max_seen, m);
    }
  }
  if (ec) {
    return Status::IOError(StrCat("cannot list ", dir, ": ", ec.message()));
  }
  registry.next_version_ = max_seen + 1;

  // The ACTIVE pointer is authoritative; a missing or corrupt pointer
  // means nothing serves until an explicit Activate.
  if (Result<std::string> bytes = ReadFileToString(registry.ActivePath());
      bytes.ok()) {
    if (Result<int64_t> active = DecodeActivePointer(std::move(*bytes));
        active.ok() && registry.manifests_.count(*active) > 0 &&
        registry.manifests_[*active].state != ModelState::kQuarantined) {
      registry.active_version_ = *active;
    }
  }

  // Reconcile manifests against the pointer: a crash between manifest
  // rewrites and the pointer write can leave state labels behind; the
  // pointer wins every dispute so serving resumes on the last version
  // whose activation fully committed.
  for (auto& [v, manifest] : registry.manifests_) {
    if (v == registry.active_version_) {
      if (manifest.state != ModelState::kActive) {
        manifest.state = ModelState::kActive;
        manifest.reason.clear();
        RVAR_RETURN_NOT_OK(registry.WriteManifest(manifest));
      }
    } else if (manifest.state == ModelState::kActive) {
      manifest.state = ModelState::kRetired;
      RVAR_RETURN_NOT_OK(registry.WriteManifest(manifest));
    }
  }
  return registry;
}

std::vector<int64_t> ModelRegistry::Versions() const {
  std::vector<int64_t> versions;
  versions.reserve(manifests_.size());
  for (const auto& [v, manifest] : manifests_) versions.push_back(v);
  return versions;
}

Result<ModelManifest> ModelRegistry::Manifest(int64_t version) const {
  const auto it = manifests_.find(version);
  if (it == manifests_.end()) {
    return Status::NotFound(StrCat("no manifest for version ", version));
  }
  return it->second;
}

std::string ModelRegistry::ModelPath(int64_t version) const {
  return StrCat(dir_, "/", NumberedName(kModelPrefix, version));
}

std::string ModelRegistry::ManifestPath(int64_t version) const {
  return StrCat(dir_, "/", NumberedName(kManifestPrefix, version));
}

std::string ModelRegistry::ActivePath() const {
  return StrCat(dir_, "/", kActiveName);
}

Status ModelRegistry::WriteManifest(const ModelManifest& manifest) {
  RVAR_RETURN_NOT_OK(AtomicWriteFile(ManifestPath(manifest.version),
                                     EncodeManifestImage(manifest)));
  manifests_[manifest.version] = manifest;
  return Status::OK();
}

Result<int64_t> ModelRegistry::PutCandidate(ModelManifest manifest,
                                            const std::string& model_bytes) {
  if (manifest.version == 0) manifest.version = next_version_;
  if (manifest.version != next_version_) {
    return Status::InvalidArgument(
        StrCat("candidate version ", manifest.version,
               " breaks monotonicity; next is ", next_version_));
  }
  if (model_bytes.empty()) {
    return Status::InvalidArgument("candidate model artifact is empty");
  }
  manifest.state = ModelState::kCandidate;
  manifest.reason.clear();
  manifest.model_crc = Crc32(model_bytes);
  manifest.model_size = model_bytes.size();
  // Artifact first, manifest last: a manifest on disk always points at a
  // fully-written artifact, so a crash between the two leaves only an
  // id-pinning orphan artifact that Open skips.
  RVAR_RETURN_NOT_OK(AtomicWriteFile(ModelPath(manifest.version), model_bytes));
  RVAR_RETURN_NOT_OK(WriteManifest(manifest));
  next_version_ = manifest.version + 1;
  return manifest.version;
}

Result<std::string> ModelRegistry::LoadModelBytes(int64_t version) const {
  RVAR_ASSIGN_OR_RETURN(ModelManifest manifest, Manifest(version));
  RVAR_ASSIGN_OR_RETURN(std::string bytes,
                        ReadFileToString(ModelPath(version)));
  if (bytes.size() != manifest.model_size) {
    return Status::IOError(
        StrCat("model artifact v", version, " holds ", bytes.size(),
               " bytes, manifest promises ", manifest.model_size));
  }
  if (Crc32(bytes) != manifest.model_crc) {
    return Status::IOError(
        StrCat("model artifact v", version, " fails its manifest CRC"));
  }
  return bytes;
}

Result<ml::GbdtClassifier> ModelRegistry::LoadModel(int64_t version) const {
  RVAR_ASSIGN_OR_RETURN(std::string bytes, LoadModelBytes(version));
  return DecodeGbdtClassifier(std::move(bytes));
}

Status ModelRegistry::RecordValidation(int64_t version,
                                       double holdout_logloss,
                                       double agreement) {
  RVAR_ASSIGN_OR_RETURN(ModelManifest manifest, Manifest(version));
  manifest.holdout_logloss = holdout_logloss;
  manifest.agreement = agreement;
  return WriteManifest(manifest);
}

Status ModelRegistry::Activate(int64_t version) {
  RVAR_ASSIGN_OR_RETURN(ModelManifest manifest, Manifest(version));
  if (manifest.state == ModelState::kQuarantined) {
    return Status::FailedPrecondition(
        StrCat("version ", version, " is quarantined (", manifest.reason,
               "); quarantined versions are never served"));
  }
  if (version == active_version_) return Status::OK();
  if (active_version_ >= 0) {
    RVAR_ASSIGN_OR_RETURN(ModelManifest old, Manifest(active_version_));
    old.state = ModelState::kRetired;
    RVAR_RETURN_NOT_OK(WriteManifest(old));
  }
  manifest.state = ModelState::kActive;
  manifest.reason.clear();
  RVAR_RETURN_NOT_OK(WriteManifest(manifest));
  // The pointer write is the commit point: everything before it is
  // reversible state labeling that Open reconciles.
  RVAR_RETURN_NOT_OK(
      AtomicWriteFile(ActivePath(), EncodeActivePointer(version)));
  active_version_ = version;
  return Status::OK();
}

Status ModelRegistry::Quarantine(int64_t version, std::string reason) {
  RVAR_ASSIGN_OR_RETURN(ModelManifest manifest, Manifest(version));
  if (version == active_version_) {
    return Status::FailedPrecondition(
        StrCat("version ", version, " is active; roll back before "
               "quarantining it"));
  }
  manifest.state = ModelState::kQuarantined;
  manifest.reason = std::move(reason);
  return WriteManifest(manifest);
}

Status ModelRegistry::Deactivate() {
  if (active_version_ < 0) return Status::OK();
  RVAR_ASSIGN_OR_RETURN(ModelManifest manifest, Manifest(active_version_));
  manifest.state = ModelState::kRetired;
  RVAR_RETURN_NOT_OK(WriteManifest(manifest));
  // Removing the pointer is the commit point. A crash between the manifest
  // retire and the removal leaves the pointer in place, and the pointer
  // wins Open's reconcile — the version simply stays active, which is the
  // safe direction for a kill switch that is about to quarantine it anyway
  // (the caller retries).
  std::error_code ec;
  fs::remove(ActivePath(), ec);
  if (ec) {
    return Status::IOError(
        StrCat("removing ACTIVE pointer: ", ec.message()));
  }
  active_version_ = -1;
  return Status::OK();
}

Result<std::vector<int64_t>> ModelRegistry::Prune(int keep_retired) {
  if (keep_retired < 0) {
    return Status::InvalidArgument("keep_retired must be >= 0");
  }
  std::vector<int64_t> retired;
  for (const auto& [v, manifest] : manifests_) {
    if (manifest.state == ModelState::kRetired) retired.push_back(v);
  }
  std::vector<int64_t> pruned;
  const int64_t high_water = next_version_ - 1;
  // std::map iteration is ascending, so `retired` is oldest-first.
  for (size_t i = 0;
       i + static_cast<size_t>(keep_retired) < retired.size(); ++i) {
    const int64_t v = retired[i];
    if (v == high_water) continue;  // the id high-water mark must survive
    std::error_code ec;
    fs::remove(ModelPath(v), ec);
    if (ec) {
      return Status::IOError(
          StrCat("cannot remove ", ModelPath(v), ": ", ec.message()));
    }
    fs::remove(ManifestPath(v), ec);
    if (ec) {
      return Status::IOError(
          StrCat("cannot remove ", ManifestPath(v), ": ", ec.message()));
    }
    manifests_.erase(v);
    pruned.push_back(v);
  }
  return pruned;
}

}  // namespace io
}  // namespace rvar
