#include "io/recovery.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "io/codec.h"
#include "io/serialize.h"
#include "obs/export.h"

namespace rvar {
namespace io {
namespace {

namespace fs = std::filesystem;

/// Cached handles into the process registry (obs/metrics.h). Recovery
/// reasons are mirrored into labeled counters so a fleet can alert on
/// corruption rates without parsing RecoveryReport strings.
struct RecoveryMetrics {
  rvar::obs::Counter* wal_appends_total;
  rvar::obs::Counter* wal_append_bytes_total;
  rvar::obs::Counter* checkpoints_total;
  rvar::obs::Counter* snapshot_bytes_total;
  rvar::obs::Counter* recover_total;
  rvar::obs::Counter* wal_records_replayed_total;
  rvar::obs::Counter* wal_bytes_truncated_total;
  rvar::obs::Counter* snapshots_discarded_total;
  rvar::obs::Histogram* checkpoint_latency;
  rvar::obs::Counter* reasons[kNumRecoveryReasons];

  static const RecoveryMetrics& Get() {
    static const RecoveryMetrics metrics = [] {
      rvar::obs::Registry& r = rvar::obs::Registry::Default();
      RecoveryMetrics m{
          r.GetCounter("recovery_wal_appends_total"),
          r.GetCounter("recovery_wal_append_bytes_total"),
          r.GetCounter("recovery_checkpoints_total"),
          r.GetCounter("recovery_snapshot_bytes_total"),
          r.GetCounter("recovery_recover_total"),
          r.GetCounter("recovery_wal_records_replayed_total"),
          r.GetCounter("recovery_wal_bytes_truncated_total"),
          r.GetCounter("recovery_snapshots_discarded_total"),
          r.GetHistogram("recovery_checkpoint_latency_seconds"),
          {}};
      for (int i = 0; i < kNumRecoveryReasons; ++i) {
        m.reasons[i] =
            r.GetCounter("recovery_reason_total", "reason",
                         RecoveryReasonName(static_cast<RecoveryReason>(i)));
      }
      return m;
    }();
    return metrics;
  }
};

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kWalPrefix[] = "wal-";

/// Parses the numeric suffix of "prefix-NNNNNN" names; -1 if malformed.
int64_t ParseSuffix(const std::string& name, const char* prefix) {
  const size_t prefix_len = std::string(prefix).size();
  if (name.size() <= prefix_len || name.compare(0, prefix_len, prefix) != 0) {
    return -1;
  }
  int64_t value = 0;
  for (size_t i = prefix_len; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    value = value * 10 + (name[i] - '0');
  }
  return value;
}

std::string NumberedPath(const std::string& dir, const char* prefix,
                         int64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06lld",
                static_cast<long long>(number));
  return StrCat(dir, "/", prefix, buf);
}

void RemoveQuietly(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // best-effort; a leftover file is re-pruned later
}

/// One observation as framed in the WAL.
struct WalObservation {
  uint64_t seq = 0;
  int group_id = 0;
  double value = 0.0;
};

std::string EncodeObservation(uint64_t seq, int group_id, double value) {
  BinaryWriter w;
  w.PutU64(seq);
  w.PutI32(group_id);
  w.PutDouble(value);
  return w.TakeBytes();
}

Result<WalObservation> DecodeObservation(std::string_view payload) {
  BinaryReader r(payload);
  WalObservation obs;
  RVAR_ASSIGN_OR_RETURN(obs.seq, r.ReadU64());
  RVAR_ASSIGN_OR_RETURN(obs.group_id, r.ReadI32());
  RVAR_ASSIGN_OR_RETURN(obs.value, r.ReadDouble());
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        StrCat("observation record has ", r.remaining(), " trailing bytes"));
  }
  return obs;
}

/// Decoded serving-state snapshot plus its recovery metadata.
struct DecodedState {
  ServingState state;
  uint64_t watermark = 0;
  uint64_t next_wal_segment = 0;
};

// Serving-state snapshot layout (PayloadKind::kServingState):
//   record 0: watermark seq, next WAL segment id, tracker decay/floor,
//             tracker count
//   record 1: the full shape-library snapshot image, nested verbatim
//   record 2..: one tracker per record (group id, counters, ll sums,
//               then the group's KLL sketch — serialize.h wire format)
Result<DecodedState> DecodeServingState(std::string bytes) {
  RVAR_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      SnapshotReader::Open(std::move(bytes), PayloadKind::kServingState));
  if (reader.num_records() < 2) {
    return Status::InvalidArgument(
        StrCat("serving-state snapshot holds ", reader.num_records(),
               " records, layout needs at least 2"));
  }
  DecodedState decoded;
  double decay = 1.0;
  double pmf_floor = 1e-6;
  uint64_t num_trackers = 0;
  {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec, reader.Record(0));
    BinaryReader r(rec);
    RVAR_ASSIGN_OR_RETURN(decoded.watermark, r.ReadU64());
    RVAR_ASSIGN_OR_RETURN(decoded.next_wal_segment, r.ReadU64());
    RVAR_ASSIGN_OR_RETURN(decay, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(pmf_floor, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(num_trackers, r.ReadU64());
    if (!r.AtEnd()) {
      return Status::InvalidArgument("serving-state header has trailing bytes");
    }
  }
  if (reader.num_records() != num_trackers + 2) {
    return Status::InvalidArgument(
        StrCat("snapshot promises ", num_trackers, " trackers but holds ",
               reader.num_records(), " records"));
  }
  {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec, reader.Record(1));
    RVAR_ASSIGN_OR_RETURN(core::ShapeLibrary library,
                          DecodeShapeLibrary(std::string(rec)));
    decoded.state.library =
        std::make_unique<core::ShapeLibrary>(std::move(library));
  }
  // One log theta table shared by every restored tracker (the same
  // sharing ShapeService uses; per-tracker copies would cost ~13 KB each).
  RVAR_ASSIGN_OR_RETURN(
      std::shared_ptr<const core::ClusterLogPmf> log_pmf,
      core::ClusterLogPmf::MakeShared(*decoded.state.library, pmf_floor));
  for (uint64_t i = 0; i < num_trackers; ++i) {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec,
                          reader.Record(static_cast<size_t>(i) + 2));
    BinaryReader r(rec);
    int gid = 0;
    int64_t count = 0;
    int64_t clamped = 0;
    std::vector<double> ll;
    RVAR_ASSIGN_OR_RETURN(gid, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(count, r.ReadI64());
    RVAR_ASSIGN_OR_RETURN(clamped, r.ReadI64());
    RVAR_ASSIGN_OR_RETURN(ll, r.ReadDoubleVector());
    RVAR_ASSIGN_OR_RETURN(KllSketch sketch, DecodeKllSketchFrom(&r));
    if (!r.AtEnd()) {
      return Status::InvalidArgument(
          StrCat("tracker record for group ", gid, " has trailing bytes"));
    }
    // A NaN observation bumps num_clamped but neither count nor the
    // sketch, and everything else lands in both — so the two tallies
    // agree in any state this process could have written.
    if (sketch.n() != count) {
      return Status::InvalidArgument(
          StrCat("group ", gid, " sketch holds ", sketch.n(),
                 " samples but the tracker counted ", count));
    }
    RVAR_ASSIGN_OR_RETURN(
        core::OnlineShapeTracker tracker,
        core::OnlineShapeTracker::Make(decoded.state.library.get(), log_pmf,
                                       decay));
    RVAR_RETURN_NOT_OK(tracker.RestoreState(ll, count, clamped));
    if (!decoded.state.trackers.emplace(gid, std::move(tracker)).second) {
      return Status::InvalidArgument(
          StrCat("group ", gid, " appears twice in the snapshot"));
    }
    decoded.state.sketches.emplace(gid, std::move(sketch));
  }
  return decoded;
}

}  // namespace

const char* RecoveryReasonName(RecoveryReason reason) {
  switch (reason) {
    case RecoveryReason::kSnapshotCorrupt:
      return "snapshot-corrupt";
    case RecoveryReason::kWalSegmentCorrupt:
      return "wal-segment-corrupt";
    case RecoveryReason::kWalTornTail:
      return "wal-torn-tail";
    case RecoveryReason::kWalCorruptRecord:
      return "wal-corrupt-record";
    case RecoveryReason::kWalBadPayload:
      return "wal-bad-payload";
    case RecoveryReason::kWalDuplicate:
      return "wal-duplicate";
    case RecoveryReason::kWalReordered:
      return "wal-reordered";
    case RecoveryReason::kWalStale:
      return "wal-stale";
  }
  return "unknown";
}

std::string RecoveryReport::ToString() const {
  std::string out = StrCat("recovered generation ", snapshot_generation,
                           ", applied ", wal_records_applied,
                           " WAL records from ", num_wal_segments_scanned,
                           " segments");
  for (int i = 0; i < kNumRecoveryReasons; ++i) {
    if (counts[static_cast<size_t>(i)] == 0) continue;
    out += StrCat("; ", RecoveryReasonName(static_cast<RecoveryReason>(i)),
                  "=", counts[static_cast<size_t>(i)]);
  }
  if (wal_bytes_truncated > 0) {
    out += StrCat("; truncated ", wal_bytes_truncated, " bytes");
  }
  return out;
}

Result<RecoveryManager> RecoveryManager::Open(const std::string& dir) {
  return Open(dir, Options());
}

Result<RecoveryManager> RecoveryManager::Open(const std::string& dir,
                                              const Options& options) {
  if (options.keep_snapshots < 1) {
    return Status::InvalidArgument("keep_snapshots must be >= 1");
  }
  if (!(options.decay > 0.0) || options.decay > 1.0) {
    return Status::InvalidArgument("decay must be in (0, 1]");
  }
  if (options.sketch_k < KllSketch::kMinK ||
      options.sketch_k > KllSketch::kMaxK) {
    return Status::InvalidArgument(
        StrCat("options.sketch_k must lie in [", KllSketch::kMinK, ", ",
               KllSketch::kMaxK, "], got ", options.sketch_k));
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError(
        StrCat("cannot create ", dir, ": ", ec.message()));
  }
  RecoveryManager manager(dir, options);
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (int64_t gen = ParseSuffix(name, kSnapshotPrefix); gen >= 0) {
      manager.snapshot_generations_.push_back(gen);
    } else if (int64_t seg = ParseSuffix(name, kWalPrefix); seg >= 0) {
      manager.wal_segments_.push_back(static_cast<uint64_t>(seg));
    }
  }
  if (ec) {
    return Status::IOError(StrCat("cannot list ", dir, ": ", ec.message()));
  }
  std::sort(manager.snapshot_generations_.begin(),
            manager.snapshot_generations_.end());
  std::sort(manager.wal_segments_.begin(), manager.wal_segments_.end());
  if (!manager.snapshot_generations_.empty()) {
    manager.latest_generation_ = manager.snapshot_generations_.back();
  }
  uint64_t max_seg = 0;
  if (!manager.wal_segments_.empty()) max_seg = manager.wal_segments_.back();
  manager.next_segment_id_ =
      std::max<uint64_t>(max_seg,
                         static_cast<uint64_t>(std::max<int64_t>(
                             manager.latest_generation_, 0))) +
      1;
  return manager;
}

std::string RecoveryManager::SnapshotPath(int64_t gen) const {
  return NumberedPath(dir_, kSnapshotPrefix, gen);
}

std::string RecoveryManager::WalPath(uint64_t segment) const {
  return NumberedPath(dir_, kWalPrefix, static_cast<int64_t>(segment));
}

Status RecoveryManager::Bootstrap(core::ShapeLibrary library) {
  if (live_) {
    return Status::FailedPrecondition("manager already holds live state");
  }
  if (HasState()) {
    return Status::FailedPrecondition(
        StrCat(dir_, " already holds ", snapshot_generations_.size(),
               " snapshot generations; Recover() them instead"));
  }
  state_.library = std::make_unique<core::ShapeLibrary>(std::move(library));
  state_.trackers.clear();
  state_.sketches.clear();
  last_seq_ = 0;
  live_ = true;
  const Status checkpoint = Checkpoint();
  if (!checkpoint.ok()) live_ = false;
  return checkpoint;
}

Result<RecoveryReport> RecoveryManager::Recover() {
  rvar::obs::ScopedSpan span("recovery/recover");
  if (snapshot_generations_.empty()) {
    return Status::NotFound(StrCat(dir_, " holds no snapshot generation"));
  }
  RecoveryReport report;

  // Newest intact generation wins; provably corrupt newer generations are
  // deleted so they cannot shadow the next checkpoint.
  DecodedState decoded;
  int64_t loaded_gen = -1;
  for (auto it = snapshot_generations_.rbegin();
       it != snapshot_generations_.rend(); ++it) {
    Result<std::string> bytes = ReadFileToString(SnapshotPath(*it));
    if (bytes.ok()) {
      Result<DecodedState> attempt = DecodeServingState(
          *std::move(bytes));
      if (attempt.ok()) {
        decoded = *std::move(attempt);
        loaded_gen = *it;
        break;
      }
    }
    ++report.counts[static_cast<size_t>(RecoveryReason::kSnapshotCorrupt)];
    ++report.num_snapshots_discarded;
    RemoveQuietly(SnapshotPath(*it));
  }
  if (loaded_gen < 0) {
    return Status::IOError(
        StrCat("all ", report.num_snapshots_discarded,
               " snapshot generations in ", dir_, " are corrupt"));
  }
  snapshot_generations_.erase(
      std::remove_if(snapshot_generations_.begin(),
                     snapshot_generations_.end(),
                     [&](int64_t g) { return g > loaded_gen; }),
      snapshot_generations_.end());
  state_ = std::move(decoded.state);
  latest_generation_ = loaded_gen;
  first_segment_after_[loaded_gen] = decoded.next_wal_segment;
  report.snapshot_generation = loaded_gen;

  // Replay the WAL: scan every surviving segment in id order, heal torn
  // or corrupt tails on disk, and buffer records keyed by sequence number
  // so duplicates and reorderings collapse deterministically.
  std::map<uint64_t, WalObservation> pending;
  uint64_t max_seq_seen = 0;
  std::vector<uint64_t> dead_segments;
  for (uint64_t seg : wal_segments_) {
    Result<WalScanResult> scan = ScanWalFile(WalPath(seg));
    ++report.num_wal_segments_scanned;
    if (!scan.ok()) {
      // Header unusable: nothing in the file can be trusted.
      ++report.counts[static_cast<size_t>(
          RecoveryReason::kWalSegmentCorrupt)];
      RemoveQuietly(WalPath(seg));
      dead_segments.push_back(seg);
      continue;
    }
    const WalScanResult& result = *scan;
    if (result.torn_tail) {
      ++report.counts[static_cast<size_t>(RecoveryReason::kWalTornTail)];
    }
    if (result.corrupt_record) {
      ++report.counts[static_cast<size_t>(
          RecoveryReason::kWalCorruptRecord)];
    }
    if (result.dropped_bytes > 0) {
      RVAR_RETURN_NOT_OK(TruncateFile(WalPath(seg), result.valid_bytes));
      report.wal_bytes_truncated +=
          static_cast<int64_t>(result.dropped_bytes);
    }
    for (const std::string& record : result.records) {
      Result<WalObservation> obs = DecodeObservation(record);
      if (!obs.ok()) {
        ++report.counts[static_cast<size_t>(
            RecoveryReason::kWalBadPayload)];
        continue;
      }
      if (obs->seq <= decoded.watermark) {
        ++report.counts[static_cast<size_t>(RecoveryReason::kWalStale)];
        continue;
      }
      if (pending.count(obs->seq) != 0) {
        ++report.counts[static_cast<size_t>(RecoveryReason::kWalDuplicate)];
        continue;
      }
      if (obs->seq < max_seq_seen) {
        ++report.counts[static_cast<size_t>(RecoveryReason::kWalReordered)];
      }
      max_seq_seen = std::max(max_seq_seen, obs->seq);
      pending.emplace(obs->seq, *obs);
    }
  }
  for (uint64_t seg : dead_segments) {
    wal_segments_.erase(
        std::remove(wal_segments_.begin(), wal_segments_.end(), seg),
        wal_segments_.end());
  }

  last_seq_ = std::max(decoded.watermark, max_seq_seen);
  live_ = true;
  for (const auto& [seq, obs] : pending) {
    RVAR_RETURN_NOT_OK(ApplyObservation(obs.group_id, obs.value));
  }
  report.wal_records_applied = static_cast<int64_t>(pending.size());

  const RecoveryMetrics& metrics = RecoveryMetrics::Get();
  metrics.recover_total->Increment();
  metrics.wal_records_replayed_total->Increment(report.wal_records_applied);
  metrics.wal_bytes_truncated_total->Increment(report.wal_bytes_truncated);
  metrics.snapshots_discarded_total->Increment(report.num_snapshots_discarded);
  for (int i = 0; i < kNumRecoveryReasons; ++i) {
    const int64_t n = report.counts[static_cast<size_t>(i)];
    if (n > 0) metrics.reasons[i]->Increment(n);
  }

  // Post-recovery appends go to a fresh segment; the replayed ones stay
  // until the next checkpoint prunes them.
  RVAR_RETURN_NOT_OK(RotateWal());
  return report;
}

Status RecoveryManager::ApplyObservation(int group_id, double value) {
  auto it = state_.trackers.find(group_id);
  if (it == state_.trackers.end()) {
    RVAR_ASSIGN_OR_RETURN(
        core::OnlineShapeTracker tracker,
        core::OnlineShapeTracker::Make(state_.library.get(), options_.decay,
                                       options_.pmf_floor));
    RVAR_ASSIGN_OR_RETURN(KllSketch sketch, KllSketch::Make(options_.sketch_k));
    it = state_.trackers.emplace(group_id, std::move(tracker)).first;
    state_.sketches.emplace(group_id, std::move(sketch));
  }
  it->second.Observe(value);
  // UpdateClamped mirrors the tracker's non-finite handling (NaN dropped,
  // +/-inf clamped to the grid edge), keeping sketch.n() == count — the
  // invariant DecodeServingState enforces.
  state_.sketches.at(group_id).UpdateClamped(state_.library->grid(), value);
  return Status::OK();
}

Status RecoveryManager::Observe(int group_id, double normalized_runtime) {
  if (!live_ || wal_ == nullptr) {
    return Status::FailedPrecondition(
        "Observe requires live state (Bootstrap() or Recover() first)");
  }
  const uint64_t seq = last_seq_ + 1;
  const std::string record =
      EncodeObservation(seq, group_id, normalized_runtime);
  RVAR_RETURN_NOT_OK(wal_->Append(record));
  const RecoveryMetrics& metrics = RecoveryMetrics::Get();
  metrics.wal_appends_total->Increment();
  metrics.wal_append_bytes_total->Increment(
      static_cast<int64_t>(record.size()));
  last_seq_ = seq;
  return ApplyObservation(group_id, normalized_runtime);
}

Status RecoveryManager::WriteSnapshot(int64_t generation,
                                      uint64_t next_wal_segment) {
  SnapshotWriter snap(PayloadKind::kServingState);
  {
    BinaryWriter w;
    w.PutU64(last_seq_);
    w.PutU64(next_wal_segment);
    w.PutDouble(options_.decay);
    w.PutDouble(options_.pmf_floor);
    w.PutU64(state_.trackers.size());
    snap.AddRecord(w.bytes());
  }
  snap.AddRecord(EncodeShapeLibrary(*state_.library));
  for (const auto& [gid, tracker] : state_.trackers) {
    const auto sketch_it = state_.sketches.find(gid);
    RVAR_CHECK(sketch_it != state_.sketches.end());
    BinaryWriter w;
    w.PutI32(gid);
    w.PutI64(tracker.count());
    w.PutI64(tracker.num_clamped());
    w.PutDoubleVector(tracker.log_likelihood());
    EncodeKllSketchInto(sketch_it->second, &w);
    snap.AddRecord(w.bytes());
  }
  const std::string image = snap.Finish();
  RecoveryMetrics::Get().snapshot_bytes_total->Increment(
      static_cast<int64_t>(image.size()));
  return AtomicWriteFile(SnapshotPath(generation), image);
}

Status RecoveryManager::RotateWal() {
  const uint64_t seg = next_segment_id_++;
  RVAR_ASSIGN_OR_RETURN(
      WalWriter writer,
      WalWriter::Create(WalPath(seg), seg, options_.sync_each_append));
  wal_ = std::make_unique<WalWriter>(std::move(writer));
  wal_segments_.push_back(seg);
  return Status::OK();
}

void RecoveryManager::Prune() {
  while (snapshot_generations_.size() >
         static_cast<size_t>(options_.keep_snapshots)) {
    const int64_t gen = snapshot_generations_.front();
    RemoveQuietly(SnapshotPath(gen));
    snapshot_generations_.erase(snapshot_generations_.begin());
    first_segment_after_.erase(gen);
  }
  if (snapshot_generations_.empty()) return;
  // WAL segments older than the oldest kept generation's first segment
  // can never be replayed again. Generations whose metadata this process
  // never saw are left alone (pruned once checkpoints refresh the map).
  const auto it = first_segment_after_.find(snapshot_generations_.front());
  if (it == first_segment_after_.end()) return;
  const uint64_t oldest_needed = it->second;
  const uint64_t current = wal_ != nullptr ? wal_->segment_id() : 0;
  std::vector<uint64_t> kept;
  for (uint64_t seg : wal_segments_) {
    if (seg < oldest_needed && seg != current) {
      RemoveQuietly(WalPath(seg));
    } else {
      kept.push_back(seg);
    }
  }
  wal_segments_ = std::move(kept);
}

Status RecoveryManager::Checkpoint() {
  rvar::obs::ScopedSpan span("recovery/checkpoint");
  rvar::obs::ScopedLatencyTimer timer(
      RecoveryMetrics::Get().checkpoint_latency);
  if (!live_) {
    return Status::FailedPrecondition(
        "Checkpoint requires live state (Bootstrap() or Recover() first)");
  }
  RecoveryMetrics::Get().checkpoints_total->Increment();
  const int64_t generation = latest_generation_ + 1;
  RVAR_RETURN_NOT_OK(WriteSnapshot(generation, next_segment_id_));
  snapshot_generations_.push_back(generation);
  first_segment_after_[generation] = next_segment_id_;
  latest_generation_ = generation;
  RVAR_RETURN_NOT_OK(RotateWal());
  Prune();
  return Status::OK();
}

}  // namespace io
}  // namespace rvar
