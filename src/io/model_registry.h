// Copyright 2026 The rvar Authors.
//
// Versioned on-disk model registry (DESIGN.md §11): the artifact store
// behind the online model lifecycle. Each version is a CRC'd snapshot of a
// fitted GBDT plus a manifest carrying its provenance (parent version,
// training seed, telemetry-window bounds) and its lifecycle state
// (candidate → active → retired, or quarantined with a reason). The ACTIVE
// pointer file — written last, atomically — is the single source of truth
// for what serves; every crash window therefore resolves to "keep serving
// the last good version", which the lifecycle chaos tests prove.

#ifndef RVAR_IO_MODEL_REGISTRY_H_
#define RVAR_IO_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ml/gbdt.h"

namespace rvar {
namespace io {

/// \brief Lifecycle state of one registered model version.
enum class ModelState : uint32_t {
  kCandidate = 0,   ///< written by a retrainer, not yet validated
  kActive = 1,      ///< the serving version (at most one)
  kRetired = 2,     ///< previously validated; eligible for rollback
  kQuarantined = 3, ///< failed validation or integrity; never served
};
const char* ModelStateName(ModelState state);

/// \brief Provenance and state of one model version. Everything in the
/// manifest is deterministic given the training inputs (no wall-clock
/// fields), so identical retrains produce byte-identical registries.
struct ModelManifest {
  int64_t version = 0;
  /// Version the candidate warm-started from; -1 for a cold start.
  int64_t parent_version = -1;
  /// Seed the candidate was trained with.
  uint64_t seed = 0;
  /// Telemetry-window provenance: ingest sequence numbers [begin, end).
  uint64_t window_begin = 0;
  uint64_t window_end = 0;
  /// Rows in the training window (train + holdout).
  uint64_t num_rows = 0;
  ModelState state = ModelState::kCandidate;
  /// Why the version was quarantined (empty otherwise).
  std::string reason;
  /// Validation-gate measurements; 0 until RecordValidation.
  double holdout_logloss = 0.0;
  double agreement = 0.0;
  /// Integrity cross-check of the model artifact file.
  uint32_t model_crc = 0;
  uint64_t model_size = 0;

  std::string ToString() const;
};

/// \brief Owns a directory of `model-NNNNNN` artifacts, `manifest-NNNNNN`
/// sidecars, and the atomic `ACTIVE` pointer.
///
/// Version ids are monotonic: the next id is one past the largest id ever
/// seen on disk, and pruning never removes the largest id (quarantined
/// manifests are retained as tombstones), so an id is never reused.
///
/// Not thread-safe; the ModelLifecycle serializes access. All writes are
/// atomic (snapshot temp+fsync+rename), so readers of the directory never
/// observe a torn manifest or artifact.
class ModelRegistry {
 public:
  /// Creates the directory if needed and loads every intact manifest.
  /// Corrupt manifests are skipped and counted (their versions still bump
  /// the high-water mark so ids are not reused). Reconciles manifest
  /// states against the ACTIVE pointer: the pointer wins every dispute.
  static Result<ModelRegistry> Open(const std::string& dir);

  ModelRegistry(ModelRegistry&&) = default;
  ModelRegistry& operator=(ModelRegistry&&) = default;

  const std::string& dir() const { return dir_; }

  /// The serving version; -1 when nothing has been activated.
  int64_t active_version() const { return active_version_; }

  /// The id the next PutCandidate will assign.
  int64_t next_version() const { return next_version_; }

  /// Versions with an intact manifest, ascending.
  std::vector<int64_t> Versions() const;

  Result<ModelManifest> Manifest(int64_t version) const;

  /// Writes the model artifact and its manifest atomically (artifact
  /// first, manifest last — a manifest on disk always describes a complete
  /// artifact). The manifest's version must be next_version() (or 0 to
  /// auto-assign); its state is forced to kCandidate and its CRC/size are
  /// computed here. Returns the assigned version.
  Result<int64_t> PutCandidate(ModelManifest manifest,
                               const std::string& model_bytes);

  /// Reads a version's artifact and verifies it against the manifest's
  /// size and CRC. IOError on any mismatch — bit rot and torn writes are
  /// caught here, before a byte reaches a decoder.
  Result<std::string> LoadModelBytes(int64_t version) const;

  /// LoadModelBytes + full decode through the snapshot checksums and
  /// GbdtClassifier::Restore invariants.
  Result<ml::GbdtClassifier> LoadModel(int64_t version) const;

  /// Records validation-gate measurements in the manifest.
  Status RecordValidation(int64_t version, double holdout_logloss,
                          double agreement);

  /// Makes `version` (a candidate or a retired version — rollback) the
  /// serving version. The previous active version is retired. Ordering:
  /// manifests first, ACTIVE pointer last, so a crash anywhere leaves the
  /// pointer on a version whose artifact is intact on disk.
  Status Activate(int64_t version);

  /// Marks a version quarantined with a reason. Quarantined versions are
  /// never served and never activated; their files are kept for forensics.
  /// The active version cannot be quarantined while it is active.
  Status Quarantine(int64_t version, std::string reason);

  /// Clears the serving version: the active manifest is retired and the
  /// ACTIVE pointer file removed, leaving nothing serving (the registry
  /// state a fresh directory starts in). No-op when nothing is active.
  /// Exists for the forced-quarantine kill switch: quarantining the live
  /// version requires it to stop being active first.
  Status Deactivate();

  /// Deletes retired versions beyond the newest `keep_retired`, oldest
  /// first (artifact + manifest). Never touches the active version,
  /// candidates, quarantined tombstones, or the largest id on disk.
  /// Returns the pruned versions, ascending.
  Result<std::vector<int64_t>> Prune(int keep_retired);

  /// Manifest files that failed validation during Open.
  int num_corrupt_manifests() const { return num_corrupt_manifests_; }

  std::string ModelPath(int64_t version) const;
  std::string ManifestPath(int64_t version) const;
  std::string ActivePath() const;

 private:
  explicit ModelRegistry(std::string dir) : dir_(std::move(dir)) {}

  /// Persists one manifest atomically and updates the in-memory map.
  Status WriteManifest(const ModelManifest& manifest);

  std::string dir_;
  std::map<int64_t, ModelManifest> manifests_;
  int64_t active_version_ = -1;
  int64_t next_version_ = 1;
  int num_corrupt_manifests_ = 0;
};

}  // namespace io
}  // namespace rvar

#endif  // RVAR_IO_MODEL_REGISTRY_H_
