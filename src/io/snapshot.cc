#include "io/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/strings.h"
#include "io/codec.h"
#include "io/crc32.h"

namespace rvar {
namespace io {
namespace {

constexpr char kMagic[4] = {'R', 'V', 'S', 'N'};
// magic(4) + version(4) + kind(4) + num_records(8) + header crc(4).
constexpr size_t kHeaderSize = 24;

Status StatusForDefect(SnapshotDefect defect, const std::string& detail) {
  return Status::IOError(
      StrCat("snapshot ", SnapshotDefectName(defect), ": ", detail));
}

// POSIX write loop (EINTR-safe).
Status WriteAll(int fd, std::string_view bytes, const std::string& path) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrCat("write failed for ", path, ": ", std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

const char* SnapshotDefectName(SnapshotDefect defect) {
  switch (defect) {
    case SnapshotDefect::kNone:
      return "none";
    case SnapshotDefect::kShortHeader:
      return "short-header";
    case SnapshotDefect::kBadMagic:
      return "bad-magic";
    case SnapshotDefect::kBadVersion:
      return "bad-version";
    case SnapshotDefect::kHeaderCrcMismatch:
      return "header-crc-mismatch";
    case SnapshotDefect::kWrongPayloadKind:
      return "wrong-payload-kind";
    case SnapshotDefect::kTornRecord:
      return "torn-record";
    case SnapshotDefect::kRecordCrcMismatch:
      return "record-crc-mismatch";
    case SnapshotDefect::kRecordCountMismatch:
      return "record-count-mismatch";
    case SnapshotDefect::kTrailingGarbage:
      return "trailing-garbage";
  }
  return "unknown";
}

void SnapshotWriter::AddRecord(std::string_view payload) {
  records_.emplace_back(payload);
}

std::string SnapshotWriter::Finish() const {
  BinaryWriter out;
  out.PutRaw(std::string_view(kMagic, sizeof(kMagic)));
  out.PutU32(kSnapshotFormatVersion);
  out.PutU32(static_cast<uint32_t>(kind_));
  out.PutU64(records_.size());
  out.PutU32(MaskCrc32(Crc32(out.bytes())));
  for (const std::string& payload : records_) {
    out.PutU32(static_cast<uint32_t>(payload.size()));
    out.PutU32(MaskCrc32(Crc32(payload)));
    out.PutRaw(payload);
  }
  return out.TakeBytes();
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  return AtomicWriteFile(path, Finish());
}

Result<SnapshotReader> SnapshotReader::Open(std::string bytes,
                                            PayloadKind expected_kind,
                                            SnapshotDefect* defect_out) {
  SnapshotDefect scratch = SnapshotDefect::kNone;
  SnapshotDefect& defect = defect_out != nullptr ? *defect_out : scratch;
  defect = SnapshotDefect::kNone;

  BinaryReader cursor(bytes);
  if (bytes.size() < kHeaderSize) {
    defect = SnapshotDefect::kShortHeader;
    return StatusForDefect(defect, StrCat(bytes.size(), " bytes"));
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    defect = SnapshotDefect::kBadMagic;
    return StatusForDefect(defect, "missing RVSN tag");
  }
  (void)cursor.ReadU32();  // magic, already checked
  const uint32_t version = *cursor.ReadU32();
  const uint32_t kind_raw = *cursor.ReadU32();
  const uint64_t num_records = *cursor.ReadU64();
  const uint32_t header_crc = *cursor.ReadU32();
  const uint32_t expected_crc =
      MaskCrc32(Crc32(std::string_view(bytes).substr(0, kHeaderSize - 4)));
  if (header_crc != expected_crc) {
    defect = SnapshotDefect::kHeaderCrcMismatch;
    return StatusForDefect(defect, "header checksum does not match");
  }
  if (version != kSnapshotFormatVersion) {
    defect = SnapshotDefect::kBadVersion;
    return StatusForDefect(
        defect, StrCat("file version ", version, ", this build reads ",
                       kSnapshotFormatVersion));
  }
  if (kind_raw != static_cast<uint32_t>(expected_kind)) {
    defect = SnapshotDefect::kWrongPayloadKind;
    return StatusForDefect(
        defect, StrCat("file holds payload kind ", kind_raw, ", expected ",
                       static_cast<uint32_t>(expected_kind)));
  }

  SnapshotReader reader;
  reader.kind_ = expected_kind;
  reader.records_.reserve(static_cast<size_t>(num_records));
  for (uint64_t i = 0; i < num_records; ++i) {
    if (cursor.AtEnd()) {
      // Truncated exactly at a record boundary: every byte present is
      // intact, but records promised by the header are missing.
      defect = SnapshotDefect::kRecordCountMismatch;
      return StatusForDefect(defect, StrCat("file holds ", i, " of ",
                                            num_records, " records"));
    }
    auto len = cursor.ReadU32();
    auto crc = cursor.ReadU32();
    if (!len.ok() || !crc.ok() || *len > cursor.remaining()) {
      defect = SnapshotDefect::kTornRecord;
      return StatusForDefect(
          defect, StrCat("record ", i, " of ", num_records,
                         " overruns the file"));
    }
    const size_t offset = cursor.position();
    const std::string_view payload =
        std::string_view(bytes).substr(offset, *len);
    if (MaskCrc32(Crc32(payload)) != *crc) {
      defect = SnapshotDefect::kRecordCrcMismatch;
      return StatusForDefect(defect,
                             StrCat("record ", i, " checksum mismatch"));
    }
    reader.records_.emplace_back(offset, static_cast<size_t>(*len));
    RVAR_RETURN_NOT_OK(cursor.Skip(*len));  // in-range by the check above
  }
  if (!cursor.AtEnd()) {
    defect = SnapshotDefect::kTrailingGarbage;
    return StatusForDefect(
        defect, StrCat(cursor.remaining(), " bytes after final record"));
  }
  reader.bytes_ = std::move(bytes);
  return reader;
}

Result<std::string_view> SnapshotReader::Record(size_t i) const {
  if (i >= records_.size()) {
    return Status::OutOfRange(StrCat("record index ", i, " of ",
                                     records_.size()));
  }
  return std::string_view(bytes_).substr(records_[i].first,
                                         records_[i].second);
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::filesystem::path target(path);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(
        StrCat("cannot open ", tmp, ": ", std::strerror(errno)));
  }
  Status st = WriteAll(fd, bytes, tmp);
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::IOError(
        StrCat("fsync failed for ", tmp, ": ", std::strerror(errno)));
  }
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::IOError(
        StrCat("rename ", tmp, " -> ", path, ": ", std::strerror(errno)));
    ::unlink(tmp.c_str());
    return st;
  }
  // Persist the rename itself: fsync the containing directory.
  const std::string dir =
      target.has_parent_path() ? target.parent_path().string() : ".";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(StrCat("no such file: ", path));
    }
    return Status::IOError(
        StrCat("cannot open ", path, ": ", std::strerror(errno)));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IOError(StrCat("read failed for ", path, ": ", err));
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace io
}  // namespace rvar
