// Copyright 2026 The rvar Authors.
//
// Append-only write-ahead log segments (DESIGN.md §7). A segment is a
// fixed header (magic, format version, segment id, header CRC) followed by
// length-prefixed CRC32-checksummed records — the same framing as
// snapshots, but open-ended: a crash mid-append leaves a torn tail, which
// the scanner detects and reports so recovery can truncate it and keep
// every record before the tear. Payloads are opaque bytes here; the
// RecoveryManager defines the observation record layout on top.

#ifndef RVAR_IO_WAL_H_
#define RVAR_IO_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rvar {
namespace io {

inline constexpr uint32_t kWalFormatVersion = 1;
/// Bytes of the segment header (magic + version + segment id + CRC).
inline constexpr size_t kWalHeaderSize = 20;

/// \brief Outcome of scanning one WAL segment.
struct WalScanResult {
  uint64_t segment_id = 0;
  /// Record payloads of the intact prefix, in append order.
  std::vector<std::string> records;
  /// Length of the prefix (header + intact records) that parsed cleanly;
  /// recovery truncates the file to this size.
  uint64_t valid_bytes = 0;
  /// A trailing partial record was dropped (crash mid-append).
  bool torn_tail = false;
  /// A CRC-mismatched record ended the scan (bit rot / overwrite); like
  /// RocksDB, everything from the first corrupt record on is dropped.
  bool corrupt_record = false;
  /// Bytes past valid_bytes that were dropped.
  uint64_t dropped_bytes = 0;
};

/// Parses a segment image. Fails (with IOError) only when the header
/// itself is present but unusable — bad magic, unreadable version, header
/// checksum mismatch — meaning nothing in the file can be trusted. A
/// short header (file shorter than kWalHeaderSize) is reported as a torn
/// empty segment, not an error.
Result<WalScanResult> ScanWalSegment(std::string_view bytes);

/// Reads and scans a segment file.
Result<WalScanResult> ScanWalFile(const std::string& path);

/// \brief Appends checksummed records to one segment file.
class WalWriter {
 public:
  /// Creates `path` (truncating any existing file) and writes the segment
  /// header. With `sync_each_append`, every Append is followed by fsync —
  /// the durability contract the torn-tail recovery test relies on.
  static Result<WalWriter> Create(const std::string& path,
                                  uint64_t segment_id, bool sync_each_append);

  /// Reopens an existing segment for appending. The caller must have
  /// scanned it and truncated any torn tail first; `expected_size` guards
  /// against appending after an unhealed tear.
  static Result<WalWriter> OpenForAppend(const std::string& path,
                                         uint64_t segment_id,
                                         uint64_t expected_size,
                                         bool sync_each_append);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one framed record (and fsyncs, per the sync policy).
  Status Append(std::string_view payload);

  /// Forces buffered appends to disk.
  Status Sync();

  uint64_t segment_id() const { return segment_id_; }
  uint64_t size_bytes() const { return size_bytes_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(int fd, std::string path, uint64_t segment_id,
            uint64_t size_bytes, bool sync_each_append)
      : fd_(fd),
        path_(std::move(path)),
        segment_id_(segment_id),
        size_bytes_(size_bytes),
        sync_each_append_(sync_each_append) {}

  int fd_ = -1;
  std::string path_;
  uint64_t segment_id_ = 0;
  uint64_t size_bytes_ = 0;
  bool sync_each_append_ = true;
};

/// Shrinks `path` to `new_size` bytes (torn-tail healing).
Status TruncateFile(const std::string& path, uint64_t new_size);

}  // namespace io
}  // namespace rvar

#endif  // RVAR_IO_WAL_H_
