#include "io/crc32.h"

#include <array>

namespace rvar {
namespace io {
namespace {

// Reflected CRC-32 (polynomial 0xEDB88320), the zlib/IEEE variant.
constexpr uint32_t kPolynomial = 0xEDB88320u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

constexpr uint32_t kMaskDelta = 0xA282EAD8u;

}  // namespace

uint32_t Crc32(std::string_view bytes, uint32_t seed) {
  const auto& table = Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : bytes) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t MaskCrc32(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t UnmaskCrc32(uint32_t masked) {
  const uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace io
}  // namespace rvar
