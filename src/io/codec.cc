#include "io/codec.h"

#include <cstring>

#include "common/strings.h"

namespace rvar {
namespace io {

void BinaryWriter::PutU8(uint8_t v) {
  buffer_.push_back(static_cast<char>(v));
}

void BinaryWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void BinaryWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutRaw(std::string_view s) {
  buffer_.append(s.data(), s.size());
}

void BinaryWriter::PutString(std::string_view s) {
  PutU64(s.size());
  buffer_.append(s.data(), s.size());
}

void BinaryWriter::PutDoubleVector(const std::vector<double>& v) {
  PutU64(v.size());
  for (double x : v) PutDouble(x);
}

void BinaryWriter::PutI32Vector(const std::vector<int>& v) {
  PutU64(v.size());
  for (int x : v) PutI32(x);
}

Result<std::string_view> BinaryReader::Take(size_t n) {
  if (n > remaining()) {
    return Status::OutOfRange(StrCat("short read: need ", n, " bytes at ",
                                     pos_, ", have ", remaining()));
  }
  std::string_view out = bytes_.substr(pos_, n);
  pos_ += n;
  return out;
}

Status BinaryReader::Skip(size_t n) {
  return Take(n).status();
}

Result<uint8_t> BinaryReader::ReadU8() {
  RVAR_ASSIGN_OR_RETURN(std::string_view b, Take(1));
  return static_cast<uint8_t>(b[0]);
}

Result<uint32_t> BinaryReader::ReadU32() {
  RVAR_ASSIGN_OR_RETURN(std::string_view b, Take(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  RVAR_ASSIGN_OR_RETURN(std::string_view b, Take(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

Result<int32_t> BinaryReader::ReadI32() {
  RVAR_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
  return static_cast<int32_t>(v);
}

Result<int64_t> BinaryReader::ReadI64() {
  RVAR_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> BinaryReader::ReadDouble() {
  RVAR_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  RVAR_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > remaining()) {
    pos_ -= 8;  // leave the cursor where the bad prefix started
    return Status::OutOfRange(StrCat("string length ", n,
                                     " exceeds remaining ", remaining() + 8,
                                     " bytes"));
  }
  RVAR_ASSIGN_OR_RETURN(std::string_view b, Take(static_cast<size_t>(n)));
  return std::string(b);
}

Result<std::vector<double>> BinaryReader::ReadDoubleVector() {
  RVAR_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > remaining() / 8) {
    pos_ -= 8;
    return Status::OutOfRange(StrCat("vector length ", n,
                                     " exceeds remaining buffer"));
  }
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    RVAR_ASSIGN_OR_RETURN(double v, ReadDouble());
    out.push_back(v);
  }
  return out;
}

Result<std::vector<int>> BinaryReader::ReadI32Vector() {
  RVAR_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > remaining() / 4) {
    pos_ -= 8;
    return Status::OutOfRange(StrCat("vector length ", n,
                                     " exceeds remaining buffer"));
  }
  std::vector<int> out;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    RVAR_ASSIGN_OR_RETURN(int32_t v, ReadI32());
    out.push_back(v);
  }
  return out;
}

}  // namespace io
}  // namespace rvar
