#include "io/serialize.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "io/codec.h"
#include "ml/tree.h"

namespace rvar {
namespace io {
namespace {

// Smallest possible encodings, used to reject hostile count prefixes
// before allocating (`count * kMin... <= remaining` guards).
constexpr size_t kMinNodeBytes = 4 + 8 + 4 + 4 + 8 + 8;  // empty value vec
constexpr size_t kMinSkylineStepBytes = 8 + 4;

// --- Tree ----------------------------------------------------------------

void EncodeTree(const ml::Tree& tree, BinaryWriter* w) {
  w->PutU64(tree.nodes.size());
  for (const ml::TreeNode& node : tree.nodes) {
    w->PutI32(node.feature);
    w->PutDouble(node.threshold);
    w->PutI32(node.left);
    w->PutI32(node.right);
    w->PutDouble(node.cover);
    w->PutDoubleVector(node.value);
  }
}

Result<ml::Tree> DecodeTree(BinaryReader* r) {
  RVAR_ASSIGN_OR_RETURN(uint64_t num_nodes, r->ReadU64());
  if (num_nodes > r->remaining() / kMinNodeBytes + 1) {
    return Status::InvalidArgument(
        StrCat("tree node count ", num_nodes, " exceeds the record size"));
  }
  ml::Tree tree;
  tree.nodes.reserve(static_cast<size_t>(num_nodes));
  for (uint64_t i = 0; i < num_nodes; ++i) {
    ml::TreeNode node;
    RVAR_ASSIGN_OR_RETURN(node.feature, r->ReadI32());
    RVAR_ASSIGN_OR_RETURN(node.threshold, r->ReadDouble());
    RVAR_ASSIGN_OR_RETURN(node.left, r->ReadI32());
    RVAR_ASSIGN_OR_RETURN(node.right, r->ReadI32());
    RVAR_ASSIGN_OR_RETURN(node.cover, r->ReadDouble());
    RVAR_ASSIGN_OR_RETURN(node.value, r->ReadDoubleVector());
    tree.nodes.push_back(std::move(node));
  }
  return tree;
}

// --- Shared helpers ------------------------------------------------------

/// Opens a snapshot and requires it to hold at least `min_records`.
Result<SnapshotReader> OpenSnapshot(std::string bytes, PayloadKind kind,
                                    size_t min_records,
                                    SnapshotDefect* defect) {
  if (defect != nullptr) *defect = SnapshotDefect::kNone;
  RVAR_ASSIGN_OR_RETURN(SnapshotReader reader,
                        SnapshotReader::Open(std::move(bytes), kind, defect));
  if (reader.num_records() < min_records) {
    return Status::InvalidArgument(
        StrCat("snapshot holds ", reader.num_records(), " records, layout "
               "needs at least ", min_records));
  }
  return reader;
}

/// The decoded record must end exactly at the cursor, or the payload has
/// trailing bytes the layout does not account for.
Status ExpectRecordEnd(const BinaryReader& r, const char* what) {
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        StrCat(what, " record has ", r.remaining(), " trailing bytes"));
  }
  return Status::OK();
}

// --- ShapeLibrary --------------------------------------------------------
//
// record 0: config, inertia, num_skipped_groups, num_clusters
// record 1..k: cluster PMF + ShapeStats
// record k+1: reference group ids + parallel cluster assignments

std::string EncodeShapeLibraryImage(const core::ShapeLibrary& library) {
  SnapshotWriter snap(PayloadKind::kShapeLibrary);
  const core::ShapeLibraryConfig& config = library.config();
  {
    BinaryWriter w;
    w.PutU8(static_cast<uint8_t>(config.normalization));
    w.PutI32(config.num_bins);
    w.PutI32(config.smoothing_radius);
    w.PutI32(config.min_support);
    w.PutI32(config.num_clusters);
    w.PutI32(config.kmeans.k);
    w.PutI32(config.kmeans.max_iterations);
    w.PutI32(config.kmeans.num_restarts);
    w.PutDouble(config.kmeans.tolerance);
    w.PutU64(config.kmeans.seed);
    w.PutDouble(library.inertia());
    w.PutI32(library.num_skipped_groups());
    w.PutI32(library.num_clusters());
    snap.AddRecord(w.bytes());
  }
  for (int k = 0; k < library.num_clusters(); ++k) {
    BinaryWriter w;
    w.PutDoubleVector(library.shape(k));
    const core::ShapeStats& s = library.stats(k);
    w.PutDouble(s.outlier_probability);
    w.PutDouble(s.iqr);
    w.PutDouble(s.p95);
    w.PutDouble(s.stddev);
    w.PutI64(s.num_samples);
    w.PutI32(s.num_groups);
    snap.AddRecord(w.bytes());
  }
  {
    BinaryWriter w;
    const std::vector<int>& groups = library.reference_groups();
    std::vector<int> assignment(groups.size());
    for (size_t i = 0; i < groups.size(); ++i) {
      assignment[i] = library.ReferenceAssignment(groups[i]);
    }
    w.PutI32Vector(groups);
    w.PutI32Vector(assignment);
    snap.AddRecord(w.bytes());
  }
  return snap.Finish();
}

Result<core::ShapeLibrary> DecodeShapeLibraryImage(std::string bytes,
                                                   SnapshotDefect* defect) {
  RVAR_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      OpenSnapshot(std::move(bytes), PayloadKind::kShapeLibrary, 2, defect));

  core::ShapeLibraryConfig config;
  double inertia = 0.0;
  int num_skipped = 0;
  int num_clusters = 0;
  {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec, reader.Record(0));
    BinaryReader r(rec);
    RVAR_ASSIGN_OR_RETURN(uint8_t norm, r.ReadU8());
    if (norm > static_cast<uint8_t>(core::Normalization::kDelta)) {
      return Status::InvalidArgument(
          StrCat("unknown normalization tag ", norm));
    }
    config.normalization = static_cast<core::Normalization>(norm);
    RVAR_ASSIGN_OR_RETURN(config.num_bins, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(config.smoothing_radius, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(config.min_support, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(config.num_clusters, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(config.kmeans.k, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(config.kmeans.max_iterations, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(config.kmeans.num_restarts, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(config.kmeans.tolerance, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(config.kmeans.seed, r.ReadU64());
    RVAR_ASSIGN_OR_RETURN(inertia, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(num_skipped, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(num_clusters, r.ReadI32());
    RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "shape-library config"));
  }
  if (num_clusters < 0 ||
      reader.num_records() != static_cast<size_t>(num_clusters) + 2) {
    return Status::InvalidArgument(
        StrCat("snapshot promises ", num_clusters, " clusters but holds ",
               reader.num_records(), " records"));
  }

  std::vector<std::vector<double>> shapes;
  std::vector<core::ShapeStats> stats;
  shapes.reserve(static_cast<size_t>(num_clusters));
  stats.reserve(static_cast<size_t>(num_clusters));
  for (int k = 0; k < num_clusters; ++k) {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec,
                          reader.Record(static_cast<size_t>(k) + 1));
    BinaryReader r(rec);
    core::ShapeStats s;
    RVAR_ASSIGN_OR_RETURN(std::vector<double> pmf, r.ReadDoubleVector());
    RVAR_ASSIGN_OR_RETURN(s.outlier_probability, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(s.iqr, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(s.p95, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(s.stddev, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(s.num_samples, r.ReadI64());
    RVAR_ASSIGN_OR_RETURN(s.num_groups, r.ReadI32());
    RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "cluster"));
    shapes.push_back(std::move(pmf));
    stats.push_back(s);
  }

  std::vector<int> groups;
  std::unordered_map<int, int> assignment;
  {
    RVAR_ASSIGN_OR_RETURN(
        std::string_view rec,
        reader.Record(static_cast<size_t>(num_clusters) + 1));
    BinaryReader r(rec);
    RVAR_ASSIGN_OR_RETURN(groups, r.ReadI32Vector());
    RVAR_ASSIGN_OR_RETURN(std::vector<int> clusters, r.ReadI32Vector());
    RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "assignment"));
    if (clusters.size() != groups.size()) {
      return Status::InvalidArgument(
          StrCat(groups.size(), " reference groups but ", clusters.size(),
                 " assignments"));
    }
    assignment.reserve(groups.size());
    for (size_t i = 0; i < groups.size(); ++i) {
      assignment[groups[i]] = clusters[i];
    }
  }
  return core::ShapeLibrary::Restore(config, std::move(shapes),
                                     std::move(stats), std::move(groups),
                                     std::move(assignment), inertia,
                                     num_skipped);
}

// --- GBDT ----------------------------------------------------------------
//
// record 0: config, num_classes, rounds, base_scores, importance
// record 1..: one tree per record, class-major ([k][r] order)

void EncodeGbdtConfig(const ml::GbdtConfig& c, BinaryWriter* w) {
  w->PutI32(c.num_rounds);
  w->PutDouble(c.learning_rate);
  w->PutI32(c.max_leaves);
  w->PutI32(c.max_depth);
  w->PutDouble(c.min_child_weight);
  w->PutI32(c.min_samples_leaf);
  w->PutDouble(c.lambda_l2);
  w->PutDouble(c.min_gain);
  w->PutI32(c.max_bins);
  w->PutDouble(c.feature_fraction);
  w->PutDouble(c.bagging_fraction);
  w->PutI32(c.early_stopping_rounds);
  w->PutU64(c.seed);
}

Status DecodeGbdtConfig(BinaryReader* r, ml::GbdtConfig* c) {
  RVAR_ASSIGN_OR_RETURN(c->num_rounds, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(c->learning_rate, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(c->max_leaves, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(c->max_depth, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(c->min_child_weight, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(c->min_samples_leaf, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(c->lambda_l2, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(c->min_gain, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(c->max_bins, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(c->feature_fraction, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(c->bagging_fraction, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(c->early_stopping_rounds, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(c->seed, r->ReadU64());
  return Status::OK();
}

std::string EncodeGbdtImage(const ml::GbdtClassifier& model) {
  SnapshotWriter snap(PayloadKind::kGbdtClassifier);
  {
    BinaryWriter w;
    EncodeGbdtConfig(model.config(), &w);
    w.PutI32(model.num_classes());
    w.PutI32(model.rounds_used());
    std::vector<double> base_scores(
        static_cast<size_t>(model.num_classes()));
    for (int k = 0; k < model.num_classes(); ++k) {
      base_scores[static_cast<size_t>(k)] = model.base_score(k);
    }
    w.PutDoubleVector(base_scores);
    w.PutDoubleVector(model.feature_importance());
    snap.AddRecord(w.bytes());
  }
  for (int k = 0; k < model.num_classes(); ++k) {
    for (const ml::Tree& tree : model.trees_for_class(k)) {
      BinaryWriter w;
      EncodeTree(tree, &w);
      snap.AddRecord(w.bytes());
    }
  }
  return snap.Finish();
}

Result<ml::GbdtClassifier> DecodeGbdtImage(std::string bytes,
                                           SnapshotDefect* defect) {
  RVAR_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      OpenSnapshot(std::move(bytes), PayloadKind::kGbdtClassifier, 1,
                   defect));
  ml::GbdtConfig config;
  int num_classes = 0;
  int rounds = 0;
  std::vector<double> base_scores;
  std::vector<double> importance;
  {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec, reader.Record(0));
    BinaryReader r(rec);
    RVAR_RETURN_NOT_OK(DecodeGbdtConfig(&r, &config));
    RVAR_ASSIGN_OR_RETURN(num_classes, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(rounds, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(base_scores, r.ReadDoubleVector());
    RVAR_ASSIGN_OR_RETURN(importance, r.ReadDoubleVector());
    RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "gbdt header"));
  }
  if (num_classes < 0 || rounds < 0 ||
      reader.num_records() !=
          1 + static_cast<size_t>(num_classes) * static_cast<size_t>(rounds)) {
    return Status::InvalidArgument(
        StrCat("snapshot promises ", num_classes, " classes x ", rounds,
               " rounds but holds ", reader.num_records(), " records"));
  }
  std::vector<std::vector<ml::Tree>> trees(static_cast<size_t>(num_classes));
  size_t next = 1;
  for (int k = 0; k < num_classes; ++k) {
    trees[static_cast<size_t>(k)].reserve(static_cast<size_t>(rounds));
    for (int round = 0; round < rounds; ++round) {
      RVAR_ASSIGN_OR_RETURN(std::string_view rec, reader.Record(next++));
      BinaryReader r(rec);
      RVAR_ASSIGN_OR_RETURN(ml::Tree tree, DecodeTree(&r));
      RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "tree"));
      trees[static_cast<size_t>(k)].push_back(std::move(tree));
    }
  }
  return ml::GbdtClassifier::Restore(config, num_classes,
                                     std::move(base_scores),
                                     std::move(trees), std::move(importance));
}

// --- Random forests ------------------------------------------------------
//
// record 0: config, (num_classes for the classifier), num_trees,
//           importance
// record 1..: one tree per record

void EncodeForestConfig(const ml::ForestConfig& c, BinaryWriter* w) {
  w->PutI32(c.num_trees);
  w->PutI32(c.tree.max_depth);
  w->PutI32(c.tree.min_samples_leaf);
  w->PutI32(c.tree.min_samples_split);
  w->PutI32(c.tree.max_features);
  w->PutDouble(c.tree.min_gain);
  w->PutDouble(c.bootstrap_fraction);
  w->PutI32(c.max_features);
  w->PutI32(c.max_bins);
  w->PutU64(c.seed);
}

Status DecodeForestConfig(BinaryReader* r, ml::ForestConfig* c) {
  RVAR_ASSIGN_OR_RETURN(c->num_trees, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(c->tree.max_depth, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(c->tree.min_samples_leaf, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(c->tree.min_samples_split, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(c->tree.max_features, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(c->tree.min_gain, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(c->bootstrap_fraction, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(c->max_features, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(c->max_bins, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(c->seed, r->ReadU64());
  return Status::OK();
}

std::string EncodeForestImage(const ml::ForestConfig& config,
                              int num_classes,  // < 0 for regressors
                              const std::vector<ml::Tree>& trees,
                              const std::vector<double>& importance,
                              PayloadKind kind) {
  SnapshotWriter snap(kind);
  {
    BinaryWriter w;
    EncodeForestConfig(config, &w);
    if (num_classes >= 0) w.PutI32(num_classes);
    w.PutU64(trees.size());
    w.PutDoubleVector(importance);
    snap.AddRecord(w.bytes());
  }
  for (const ml::Tree& tree : trees) {
    BinaryWriter w;
    EncodeTree(tree, &w);
    snap.AddRecord(w.bytes());
  }
  return snap.Finish();
}

struct ForestParts {
  ml::ForestConfig config;
  int num_classes = -1;
  std::vector<ml::Tree> trees;
  std::vector<double> importance;
};

Result<ForestParts> DecodeForestImage(std::string bytes, bool classifier,
                                      SnapshotDefect* defect) {
  const PayloadKind kind = classifier
                               ? PayloadKind::kRandomForestClassifier
                               : PayloadKind::kRandomForestRegressor;
  RVAR_ASSIGN_OR_RETURN(SnapshotReader reader,
                        OpenSnapshot(std::move(bytes), kind, 1, defect));
  ForestParts parts;
  uint64_t num_trees = 0;
  {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec, reader.Record(0));
    BinaryReader r(rec);
    RVAR_RETURN_NOT_OK(DecodeForestConfig(&r, &parts.config));
    if (classifier) {
      RVAR_ASSIGN_OR_RETURN(parts.num_classes, r.ReadI32());
    }
    RVAR_ASSIGN_OR_RETURN(num_trees, r.ReadU64());
    RVAR_ASSIGN_OR_RETURN(parts.importance, r.ReadDoubleVector());
    RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "forest header"));
  }
  if (reader.num_records() != num_trees + 1) {
    return Status::InvalidArgument(
        StrCat("snapshot promises ", num_trees, " trees but holds ",
               reader.num_records(), " records"));
  }
  parts.trees.reserve(static_cast<size_t>(num_trees));
  for (uint64_t i = 0; i < num_trees; ++i) {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec,
                          reader.Record(static_cast<size_t>(i) + 1));
    BinaryReader r(rec);
    RVAR_ASSIGN_OR_RETURN(ml::Tree tree, DecodeTree(&r));
    RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "tree"));
    parts.trees.push_back(std::move(tree));
  }
  return parts;
}

// --- Featurizer history --------------------------------------------------
//
// record 0: group count
// record 1..: one group per record (id, support, aggregates, SKU mix)

std::string EncodeFeaturizerImage(const core::Featurizer& featurizer) {
  SnapshotWriter snap(PayloadKind::kFeaturizerState);
  std::vector<int> gids;
  gids.reserve(featurizer.history().size());
  for (const auto& [gid, h] : featurizer.history()) gids.push_back(gid);
  std::sort(gids.begin(), gids.end());  // deterministic images
  {
    BinaryWriter w;
    w.PutU64(gids.size());
    snap.AddRecord(w.bytes());
  }
  for (int gid : gids) {
    const core::Featurizer::GroupHistory& h = featurizer.history().at(gid);
    BinaryWriter w;
    w.PutI32(gid);
    w.PutI32(h.support);
    w.PutDouble(h.input_mean);
    w.PutDouble(h.input_std);
    w.PutDouble(h.temp_mean);
    w.PutDouble(h.vertices_mean);
    w.PutDouble(h.max_tokens_mean);
    w.PutDouble(h.max_tokens_std);
    w.PutDouble(h.avg_tokens_mean);
    w.PutDouble(h.spare_tokens_mean);
    w.PutDouble(h.runtime_median);
    w.PutDoubleVector(h.sku_frac);
    snap.AddRecord(w.bytes());
  }
  return snap.Finish();
}

Status DecodeFeaturizerImage(std::string bytes, core::Featurizer* featurizer,
                             SnapshotDefect* defect) {
  RVAR_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      OpenSnapshot(std::move(bytes), PayloadKind::kFeaturizerState, 1,
                   defect));
  uint64_t num_groups = 0;
  {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec, reader.Record(0));
    BinaryReader r(rec);
    RVAR_ASSIGN_OR_RETURN(num_groups, r.ReadU64());
    RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "featurizer header"));
  }
  if (reader.num_records() != num_groups + 1) {
    return Status::InvalidArgument(
        StrCat("snapshot promises ", num_groups, " groups but holds ",
               reader.num_records(), " records"));
  }
  std::unordered_map<int, core::Featurizer::GroupHistory> history;
  history.reserve(static_cast<size_t>(num_groups));
  for (uint64_t i = 0; i < num_groups; ++i) {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec,
                          reader.Record(static_cast<size_t>(i) + 1));
    BinaryReader r(rec);
    int gid = 0;
    core::Featurizer::GroupHistory h;
    RVAR_ASSIGN_OR_RETURN(gid, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(h.support, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(h.input_mean, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(h.input_std, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(h.temp_mean, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(h.vertices_mean, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(h.max_tokens_mean, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(h.max_tokens_std, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(h.avg_tokens_mean, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(h.spare_tokens_mean, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(h.runtime_median, r.ReadDouble());
    RVAR_ASSIGN_OR_RETURN(h.sku_frac, r.ReadDoubleVector());
    RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "group history"));
    if (!history.emplace(gid, std::move(h)).second) {
      return Status::InvalidArgument(
          StrCat("group ", gid, " appears twice in the snapshot"));
    }
  }
  return featurizer->RestoreHistory(std::move(history));
}

// --- TelemetryStore ------------------------------------------------------
//
// record 0: run count, quarantined count, per-reason quarantine counts
// record 1..: one JobRun per record (indexed runs, then quarantined)

void EncodeJobRun(const sim::JobRun& run, BinaryWriter* w) {
  w->PutI32(run.group_id);
  w->PutI64(run.instance_id);
  w->PutDouble(run.submit_time);
  w->PutDouble(run.runtime_seconds);
  w->PutU8(run.rare_event ? 1 : 0);
  w->PutI32(run.machine_faults);
  w->PutI32(run.vertex_retries);
  w->PutU8(run.spare_revoked ? 1 : 0);
  w->PutI32(run.allocated_tokens);
  w->PutI32(run.max_tokens_used);
  w->PutDouble(run.avg_tokens_used);
  w->PutDouble(run.avg_spare_tokens);
  w->PutU64(run.skyline.size());
  for (const auto& [start, tokens] : run.skyline) {
    w->PutDouble(start);
    w->PutI32(tokens);
  }
  w->PutDouble(run.input_gb);
  w->PutDouble(run.temp_data_gb);
  w->PutI32(run.total_vertices);
  w->PutI32(run.num_stages);
  w->PutDoubleVector(run.sku_vertex_fraction);
  w->PutDoubleVector(run.sku_cpu_util);
  w->PutDouble(run.cpu_util_mean);
  w->PutDouble(run.cpu_util_std);
  w->PutDouble(run.cluster_baseline_util);
  w->PutDouble(run.spare_availability);
}

Result<sim::JobRun> DecodeJobRun(BinaryReader* r) {
  sim::JobRun run;
  RVAR_ASSIGN_OR_RETURN(run.group_id, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(run.instance_id, r->ReadI64());
  RVAR_ASSIGN_OR_RETURN(run.submit_time, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(run.runtime_seconds, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(uint8_t rare, r->ReadU8());
  run.rare_event = rare != 0;
  RVAR_ASSIGN_OR_RETURN(run.machine_faults, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(run.vertex_retries, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(uint8_t revoked, r->ReadU8());
  run.spare_revoked = revoked != 0;
  RVAR_ASSIGN_OR_RETURN(run.allocated_tokens, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(run.max_tokens_used, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(run.avg_tokens_used, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(run.avg_spare_tokens, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(uint64_t skyline_steps, r->ReadU64());
  if (skyline_steps > r->remaining() / kMinSkylineStepBytes) {
    return Status::InvalidArgument(
        StrCat("skyline step count ", skyline_steps,
               " exceeds the record size"));
  }
  run.skyline.reserve(static_cast<size_t>(skyline_steps));
  for (uint64_t i = 0; i < skyline_steps; ++i) {
    RVAR_ASSIGN_OR_RETURN(double start, r->ReadDouble());
    RVAR_ASSIGN_OR_RETURN(int tokens, r->ReadI32());
    run.skyline.emplace_back(start, tokens);
  }
  RVAR_ASSIGN_OR_RETURN(run.input_gb, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(run.temp_data_gb, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(run.total_vertices, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(run.num_stages, r->ReadI32());
  RVAR_ASSIGN_OR_RETURN(run.sku_vertex_fraction, r->ReadDoubleVector());
  RVAR_ASSIGN_OR_RETURN(run.sku_cpu_util, r->ReadDoubleVector());
  RVAR_ASSIGN_OR_RETURN(run.cpu_util_mean, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(run.cpu_util_std, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(run.cluster_baseline_util, r->ReadDouble());
  RVAR_ASSIGN_OR_RETURN(run.spare_availability, r->ReadDouble());
  return run;
}

std::string EncodeTelemetryImage(const sim::TelemetryStore& store) {
  SnapshotWriter snap(PayloadKind::kTelemetryStore);
  {
    BinaryWriter w;
    w.PutU64(store.NumRuns());
    w.PutU64(store.NumQuarantined());
    for (int reason = 0; reason < sim::kNumQuarantineReasons; ++reason) {
      w.PutI64(store.QuarantineCount(
          static_cast<sim::QuarantineReason>(reason)));
    }
    snap.AddRecord(w.bytes());
  }
  for (const sim::JobRun& run : store.runs()) {
    BinaryWriter w;
    EncodeJobRun(run, &w);
    snap.AddRecord(w.bytes());
  }
  for (const sim::JobRun& run : store.quarantined()) {
    BinaryWriter w;
    EncodeJobRun(run, &w);
    snap.AddRecord(w.bytes());
  }
  return snap.Finish();
}

Result<sim::TelemetryStore> DecodeTelemetryImage(std::string bytes,
                                                 SnapshotDefect* defect) {
  RVAR_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      OpenSnapshot(std::move(bytes), PayloadKind::kTelemetryStore, 1,
                   defect));
  uint64_t num_runs = 0;
  uint64_t num_quarantined = 0;
  std::array<int64_t, sim::kNumQuarantineReasons> counts{};
  {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec, reader.Record(0));
    BinaryReader r(rec);
    RVAR_ASSIGN_OR_RETURN(num_runs, r.ReadU64());
    RVAR_ASSIGN_OR_RETURN(num_quarantined, r.ReadU64());
    for (int reason = 0; reason < sim::kNumQuarantineReasons; ++reason) {
      RVAR_ASSIGN_OR_RETURN(counts[static_cast<size_t>(reason)],
                            r.ReadI64());
    }
    RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "telemetry header"));
  }
  if (reader.num_records() != num_runs + num_quarantined + 1) {
    return Status::InvalidArgument(
        StrCat("snapshot promises ", num_runs, " runs + ", num_quarantined,
               " quarantined but holds ", reader.num_records(), " records"));
  }
  sim::TelemetryStore store;
  for (uint64_t i = 0; i < num_runs; ++i) {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec,
                          reader.Record(static_cast<size_t>(i) + 1));
    BinaryReader r(rec);
    RVAR_ASSIGN_OR_RETURN(sim::JobRun run, DecodeJobRun(&r));
    RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "run"));
    // Re-validate through the quarantine gate: an indexed run that no
    // longer passes means the snapshot is semantically corrupt.
    const Status ingest = store.Ingest(std::move(run));
    if (!ingest.ok()) {
      return Status::InvalidArgument(
          StrCat("snapshot run ", i, " failed re-validation: ",
                 ingest.message()));
    }
  }
  std::vector<sim::JobRun> quarantined;
  quarantined.reserve(static_cast<size_t>(num_quarantined));
  for (uint64_t i = 0; i < num_quarantined; ++i) {
    RVAR_ASSIGN_OR_RETURN(
        std::string_view rec,
        reader.Record(static_cast<size_t>(num_runs + i) + 1));
    BinaryReader r(rec);
    RVAR_ASSIGN_OR_RETURN(sim::JobRun run, DecodeJobRun(&r));
    RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "quarantined run"));
    quarantined.push_back(std::move(run));
  }
  RVAR_RETURN_NOT_OK(store.RestoreAudit(std::move(quarantined), counts));
  return store;
}

// --- KllSketch (bit-cast helpers + standalone container) -----------------

uint32_t FloatBits(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

float FloatFromBits(uint32_t bits) {
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// record 0: the embedded sketch encoding (EncodeKllSketchInto)
std::string EncodeKllSketchImage(const KllSketch& sketch) {
  SnapshotWriter snap(PayloadKind::kKllSketch);
  BinaryWriter w;
  EncodeKllSketchInto(sketch, &w);
  snap.AddRecord(w.bytes());
  return snap.Finish();
}

Result<KllSketch> DecodeKllSketchImage(std::string bytes,
                                       SnapshotDefect* defect) {
  RVAR_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      OpenSnapshot(std::move(bytes), PayloadKind::kKllSketch, 1, defect));
  if (reader.num_records() != 1) {
    return Status::InvalidArgument(
        StrCat("kll-sketch snapshot holds ", reader.num_records(),
               " records, layout has exactly 1"));
  }
  RVAR_ASSIGN_OR_RETURN(std::string_view rec, reader.Record(0));
  BinaryReader r(rec);
  RVAR_ASSIGN_OR_RETURN(KllSketch sketch, DecodeKllSketchFrom(&r));
  RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "kll-sketch"));
  return sketch;
}

// --- ShapeServiceState ---------------------------------------------------
//
// record 0: number of group states
// record 1..n: group id, observation count, clamp count, ll sums, and the
//              group's quantile sketch (embedded KllSketch encoding)
//
// Records follow ExportState's order — ascending group id, after the
// deterministic per-shard merge — so the encoded image is byte-identical
// at any shard count and a snapshot written by an S-shard service
// restores into any other shard count (the shard-determinism suite pins
// this). Pre-sketch images fail to decode (their records end before the
// sketch fields), rather than half-loading without sketches.

std::string EncodeShapeServiceImage(const core::ShapeService& service) {
  const std::vector<core::ShapeService::GroupState> states =
      service.ExportState();
  SnapshotWriter snap(PayloadKind::kShapeServiceState);
  {
    BinaryWriter w;
    w.PutU64(states.size());
    snap.AddRecord(w.bytes());
  }
  for (const core::ShapeService::GroupState& state : states) {
    BinaryWriter w;
    w.PutI32(state.group_id);
    w.PutI64(state.count);
    w.PutI64(state.num_clamped);
    w.PutDoubleVector(state.log_likelihood);
    RVAR_CHECK(state.sketch.has_value());  // ExportState always fills it
    EncodeKllSketchInto(*state.sketch, &w);
    snap.AddRecord(w.bytes());
  }
  return snap.Finish();
}

Result<std::vector<core::ShapeService::GroupState>> DecodeShapeServiceImage(
    std::string bytes, SnapshotDefect* defect) {
  RVAR_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      OpenSnapshot(std::move(bytes), PayloadKind::kShapeServiceState, 1,
                   defect));
  uint64_t num_groups = 0;
  {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec, reader.Record(0));
    BinaryReader r(rec);
    RVAR_ASSIGN_OR_RETURN(num_groups, r.ReadU64());
    RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "shape-service header"));
  }
  if (reader.num_records() != num_groups + 1) {
    return Status::InvalidArgument(
        StrCat("snapshot promises ", num_groups, " group states but holds ",
               reader.num_records(), " records"));
  }
  std::vector<core::ShapeService::GroupState> states;
  states.reserve(static_cast<size_t>(num_groups));
  for (uint64_t i = 0; i < num_groups; ++i) {
    RVAR_ASSIGN_OR_RETURN(std::string_view rec,
                          reader.Record(static_cast<size_t>(i) + 1));
    BinaryReader r(rec);
    core::ShapeService::GroupState state;
    RVAR_ASSIGN_OR_RETURN(state.group_id, r.ReadI32());
    RVAR_ASSIGN_OR_RETURN(state.count, r.ReadI64());
    RVAR_ASSIGN_OR_RETURN(state.num_clamped, r.ReadI64());
    RVAR_ASSIGN_OR_RETURN(state.log_likelihood, r.ReadDoubleVector());
    {
      RVAR_ASSIGN_OR_RETURN(KllSketch sketch, DecodeKllSketchFrom(&r));
      state.sketch.emplace(std::move(sketch));
    }
    RVAR_RETURN_NOT_OK(ExpectRecordEnd(r, "group state"));
    if (state.sketch->n() != state.count) {
      return Status::InvalidArgument(
          StrCat("group state ", i, " sketch holds ", state.sketch->n(),
                 " observations but tracker count is ", state.count));
    }
    if (state.group_id < 0) {
      return Status::InvalidArgument(
          StrCat("group state ", i, " holds negative group id ",
                 state.group_id));
    }
    if (i > 0 && state.group_id <= states.back().group_id) {
      return Status::InvalidArgument(
          "group states must be strictly ascending by group id");
    }
    states.push_back(std::move(state));
  }
  return states;
}

}  // namespace

// --- Public wrappers -----------------------------------------------------

std::string EncodeShapeLibrary(const core::ShapeLibrary& library) {
  return EncodeShapeLibraryImage(library);
}
Status SaveShapeLibrary(const core::ShapeLibrary& library,
                        const std::string& path) {
  return AtomicWriteFile(path, EncodeShapeLibrary(library));
}
Result<core::ShapeLibrary> DecodeShapeLibrary(std::string bytes,
                                              SnapshotDefect* defect) {
  return DecodeShapeLibraryImage(std::move(bytes), defect);
}
Result<core::ShapeLibrary> LoadShapeLibrary(const std::string& path) {
  RVAR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeShapeLibrary(std::move(bytes));
}

std::string EncodeGbdtClassifier(const ml::GbdtClassifier& model) {
  return EncodeGbdtImage(model);
}
Status SaveGbdtClassifier(const ml::GbdtClassifier& model,
                          const std::string& path) {
  return AtomicWriteFile(path, EncodeGbdtClassifier(model));
}
Result<ml::GbdtClassifier> DecodeGbdtClassifier(std::string bytes,
                                                SnapshotDefect* defect) {
  return DecodeGbdtImage(std::move(bytes), defect);
}
Result<ml::GbdtClassifier> LoadGbdtClassifier(const std::string& path) {
  RVAR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeGbdtClassifier(std::move(bytes));
}

std::string EncodeRandomForestClassifier(
    const ml::RandomForestClassifier& model) {
  return EncodeForestImage(model.config(), model.num_classes(),
                           model.trees(), model.feature_importance(),
                           PayloadKind::kRandomForestClassifier);
}
Status SaveRandomForestClassifier(const ml::RandomForestClassifier& model,
                                  const std::string& path) {
  return AtomicWriteFile(path, EncodeRandomForestClassifier(model));
}
Result<ml::RandomForestClassifier> DecodeRandomForestClassifier(
    std::string bytes, SnapshotDefect* defect) {
  RVAR_ASSIGN_OR_RETURN(
      ForestParts parts,
      DecodeForestImage(std::move(bytes), /*classifier=*/true, defect));
  return ml::RandomForestClassifier::Restore(
      parts.config, parts.num_classes, std::move(parts.trees),
      std::move(parts.importance));
}
Result<ml::RandomForestClassifier> LoadRandomForestClassifier(
    const std::string& path) {
  RVAR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeRandomForestClassifier(std::move(bytes));
}

std::string EncodeRandomForestRegressor(
    const ml::RandomForestRegressor& model) {
  return EncodeForestImage(model.config(), /*num_classes=*/-1,
                           model.trees(), model.feature_importance(),
                           PayloadKind::kRandomForestRegressor);
}
Status SaveRandomForestRegressor(const ml::RandomForestRegressor& model,
                                 const std::string& path) {
  return AtomicWriteFile(path, EncodeRandomForestRegressor(model));
}
Result<ml::RandomForestRegressor> DecodeRandomForestRegressor(
    std::string bytes, SnapshotDefect* defect) {
  RVAR_ASSIGN_OR_RETURN(
      ForestParts parts,
      DecodeForestImage(std::move(bytes), /*classifier=*/false, defect));
  return ml::RandomForestRegressor::Restore(parts.config,
                                            std::move(parts.trees),
                                            std::move(parts.importance));
}
Result<ml::RandomForestRegressor> LoadRandomForestRegressor(
    const std::string& path) {
  RVAR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeRandomForestRegressor(std::move(bytes));
}

std::string EncodeFeaturizerState(const core::Featurizer& featurizer) {
  return EncodeFeaturizerImage(featurizer);
}
Status SaveFeaturizerState(const core::Featurizer& featurizer,
                           const std::string& path) {
  return AtomicWriteFile(path, EncodeFeaturizerState(featurizer));
}
Status DecodeFeaturizerState(std::string bytes, core::Featurizer* featurizer,
                             SnapshotDefect* defect) {
  return DecodeFeaturizerImage(std::move(bytes), featurizer, defect);
}
Status LoadFeaturizerState(const std::string& path,
                           core::Featurizer* featurizer) {
  RVAR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeFeaturizerState(std::move(bytes), featurizer);
}

std::string EncodeTelemetryStore(const sim::TelemetryStore& store) {
  return EncodeTelemetryImage(store);
}
Status SaveTelemetryStore(const sim::TelemetryStore& store,
                          const std::string& path) {
  return AtomicWriteFile(path, EncodeTelemetryStore(store));
}
Result<sim::TelemetryStore> DecodeTelemetryStore(std::string bytes,
                                                 SnapshotDefect* defect) {
  return DecodeTelemetryImage(std::move(bytes), defect);
}
Result<sim::TelemetryStore> LoadTelemetryStore(const std::string& path) {
  RVAR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeTelemetryStore(std::move(bytes));
}

std::string EncodeShapeServiceState(const core::ShapeService& service) {
  return EncodeShapeServiceImage(service);
}
Status SaveShapeServiceState(const core::ShapeService& service,
                             const std::string& path) {
  return AtomicWriteFile(path, EncodeShapeServiceState(service));
}
Result<std::vector<core::ShapeService::GroupState>> DecodeShapeServiceState(
    std::string bytes, SnapshotDefect* defect) {
  return DecodeShapeServiceImage(std::move(bytes), defect);
}
Result<std::vector<core::ShapeService::GroupState>> LoadShapeServiceState(
    const std::string& path) {
  RVAR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeShapeServiceState(std::move(bytes));
}

void EncodeKllSketchInto(const KllSketch& sketch, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(sketch.k()));
  w->PutI64(sketch.n());
  w->PutU32(FloatBits(sketch.min_value()));
  w->PutU32(FloatBits(sketch.max_value()));
  w->PutU64(sketch.compaction_parity());
  const std::vector<uint32_t>& level_sizes = sketch.level_sizes();
  w->PutU32(static_cast<uint32_t>(level_sizes.size()));
  for (uint32_t size : level_sizes) w->PutU32(size);
  for (float item : sketch.items()) w->PutU32(FloatBits(item));
}

Result<KllSketch> DecodeKllSketchFrom(BinaryReader* r) {
  RVAR_ASSIGN_OR_RETURN(uint32_t k, r->ReadU32());
  if (k > static_cast<uint32_t>(KllSketch::kMaxK)) {
    // Range-check before handing k to Restore so a hostile prefix cannot
    // drive capacity math with a wild value.
    return Status::InvalidArgument(
        StrCat("sketch k ", k, " exceeds the limit ", KllSketch::kMaxK));
  }
  RVAR_ASSIGN_OR_RETURN(int64_t n, r->ReadI64());
  RVAR_ASSIGN_OR_RETURN(uint32_t min_bits, r->ReadU32());
  RVAR_ASSIGN_OR_RETURN(uint32_t max_bits, r->ReadU32());
  RVAR_ASSIGN_OR_RETURN(uint64_t parity, r->ReadU64());
  RVAR_ASSIGN_OR_RETURN(uint32_t num_levels, r->ReadU32());
  if (num_levels > static_cast<uint32_t>(KllSketch::kMaxLevels)) {
    return Status::InvalidArgument(
        StrCat("sketch holds ", num_levels, " levels, limit is ",
               KllSketch::kMaxLevels));
  }
  std::vector<uint32_t> level_sizes;
  level_sizes.reserve(num_levels);
  uint64_t total_items = 0;
  for (uint32_t h = 0; h < num_levels; ++h) {
    RVAR_ASSIGN_OR_RETURN(uint32_t size, r->ReadU32());
    level_sizes.push_back(size);
    total_items += size;
  }
  if (total_items > r->remaining() / sizeof(uint32_t)) {
    // Reject the count prefix before allocating (hostile-bytes guard).
    return Status::InvalidArgument(
        StrCat("sketch promises ", total_items, " retained items but only ",
               r->remaining(), " bytes remain"));
  }
  std::vector<float> items;
  items.reserve(static_cast<size_t>(total_items));
  for (uint64_t i = 0; i < total_items; ++i) {
    RVAR_ASSIGN_OR_RETURN(uint32_t bits, r->ReadU32());
    items.push_back(FloatFromBits(bits));
  }
  return KllSketch::Restore(static_cast<int>(k), n, FloatFromBits(min_bits),
                            FloatFromBits(max_bits), std::move(level_sizes),
                            std::move(items), parity);
}

std::string EncodeKllSketch(const KllSketch& sketch) {
  return EncodeKllSketchImage(sketch);
}
Status SaveKllSketch(const KllSketch& sketch, const std::string& path) {
  return AtomicWriteFile(path, EncodeKllSketch(sketch));
}
Result<KllSketch> DecodeKllSketch(std::string bytes, SnapshotDefect* defect) {
  return DecodeKllSketchImage(std::move(bytes), defect);
}
Result<KllSketch> LoadKllSketch(const std::string& path) {
  RVAR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeKllSketch(std::move(bytes));
}

}  // namespace io
}  // namespace rvar
