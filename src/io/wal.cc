#include "io/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"
#include "io/codec.h"
#include "io/crc32.h"
#include "io/snapshot.h"

namespace rvar {
namespace io {
namespace {

constexpr char kWalMagic[4] = {'R', 'V', 'W', 'L'};

std::string EncodeHeader(uint64_t segment_id) {
  BinaryWriter out;
  out.PutRaw(std::string_view(kWalMagic, sizeof(kWalMagic)));
  out.PutU32(kWalFormatVersion);
  out.PutU64(segment_id);
  out.PutU32(MaskCrc32(Crc32(out.bytes())));
  return out.TakeBytes();
}

Status WriteAllFd(int fd, std::string_view bytes, const std::string& path) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrCat("write failed for ", path, ": ", std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<WalScanResult> ScanWalSegment(std::string_view bytes) {
  WalScanResult scan;
  if (bytes.size() < kWalHeaderSize) {
    // Crash between create and header fsync: nothing usable, but not an
    // error — recovery truncates to zero and rewrites the header.
    scan.torn_tail = !bytes.empty();
    scan.dropped_bytes = bytes.size();
    return scan;
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::IOError("wal segment: missing RVWL tag");
  }
  BinaryReader cursor(bytes);
  (void)cursor.ReadU32();  // magic
  const uint32_t version = *cursor.ReadU32();
  const uint64_t segment_id = *cursor.ReadU64();
  const uint32_t header_crc = *cursor.ReadU32();
  if (header_crc != MaskCrc32(Crc32(bytes.substr(0, kWalHeaderSize - 4)))) {
    return Status::IOError("wal segment: header checksum mismatch");
  }
  if (version != kWalFormatVersion) {
    return Status::IOError(StrCat("wal segment: file version ", version,
                                  ", this build reads ", kWalFormatVersion));
  }
  scan.segment_id = segment_id;
  scan.valid_bytes = kWalHeaderSize;

  while (!cursor.AtEnd()) {
    const size_t record_start = cursor.position();
    auto len = cursor.ReadU32();
    auto crc = cursor.ReadU32();
    if (!len.ok() || !crc.ok() || *len > cursor.remaining()) {
      scan.torn_tail = true;
      scan.dropped_bytes = bytes.size() - record_start;
      break;
    }
    const std::string_view payload =
        bytes.substr(cursor.position(), *len);
    if (MaskCrc32(Crc32(payload)) != *crc) {
      scan.corrupt_record = true;
      scan.dropped_bytes = bytes.size() - record_start;
      break;
    }
    RVAR_RETURN_NOT_OK(cursor.Skip(*len));
    scan.records.emplace_back(payload);
    scan.valid_bytes = cursor.position();
  }
  return scan;
}

Result<WalScanResult> ScanWalFile(const std::string& path) {
  RVAR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return ScanWalSegment(bytes);
}

Result<WalWriter> WalWriter::Create(const std::string& path,
                                    uint64_t segment_id,
                                    bool sync_each_append) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(
        StrCat("cannot create wal segment ", path, ": ",
               std::strerror(errno)));
  }
  const std::string header = EncodeHeader(segment_id);
  Status st = WriteAllFd(fd, header, path);
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::IOError(
        StrCat("fsync failed for ", path, ": ", std::strerror(errno)));
  }
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  return WalWriter(fd, path, segment_id, header.size(), sync_each_append);
}

Result<WalWriter> WalWriter::OpenForAppend(const std::string& path,
                                           uint64_t segment_id,
                                           uint64_t expected_size,
                                           bool sync_each_append) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return Status::IOError(
        StrCat("cannot open wal segment ", path, ": ",
               std::strerror(errno)));
  }
  struct stat info;
  if (::fstat(fd, &info) != 0) {
    ::close(fd);
    return Status::IOError(
        StrCat("fstat failed for ", path, ": ", std::strerror(errno)));
  }
  if (static_cast<uint64_t>(info.st_size) != expected_size) {
    ::close(fd);
    return Status::FailedPrecondition(
        StrCat("wal segment ", path, " is ", info.st_size,
               " bytes, expected ", expected_size,
               " — scan and truncate the torn tail before appending"));
  }
  return WalWriter(fd, path, segment_id, expected_size, sync_each_append);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      segment_id_(other.segment_id_),
      size_bytes_(other.size_bytes_),
      sync_each_append_(other.sync_each_append_) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    segment_id_ = other.segment_id_;
    size_bytes_ = other.size_bytes_;
    sync_each_append_ = other.sync_each_append_;
    other.fd_ = -1;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(std::string_view payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal writer is closed");
  }
  BinaryWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(MaskCrc32(Crc32(payload)));
  frame.PutRaw(payload);
  RVAR_RETURN_NOT_OK(WriteAllFd(fd_, frame.bytes(), path_));
  size_bytes_ += frame.bytes().size();
  if (sync_each_append_) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal writer is closed");
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError(
        StrCat("fsync failed for ", path_, ": ", std::strerror(errno)));
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t new_size) {
  if (::truncate(path.c_str(), static_cast<off_t>(new_size)) != 0) {
    return Status::IOError(
        StrCat("truncate ", path, " to ", new_size, " bytes: ",
               std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace io
}  // namespace rvar
