// Copyright 2026 The rvar Authors.
//
// The on-disk snapshot container (DESIGN.md §7): a versioned, magic-tagged
// header followed by length-prefixed, CRC32-checksummed records. Writers
// buffer the whole file and persist it atomically (temp file + fsync +
// rename + directory fsync), so a snapshot on disk is either the complete
// previous generation or the complete new one — never a torn mix. Readers
// validate the header and every record checksum up front and classify the
// first defect found, so callers (RecoveryManager) can fall back to an
// older generation with exact per-reason accounting.

#ifndef RVAR_IO_SNAPSHOT_H_
#define RVAR_IO_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rvar {
namespace io {

/// Current snapshot container format version. Readers accept exactly this
/// version; bumping it is how incompatible layout changes are rolled out
/// (version skew yields a clean Status, never a misparse).
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// \brief What kind of payload a snapshot holds. Stored in the header so a
/// file saved as one type can never be silently decoded as another.
enum class PayloadKind : uint32_t {
  kShapeLibrary = 1,
  kGbdtClassifier = 2,
  kRandomForestClassifier = 3,
  kRandomForestRegressor = 4,
  kFeaturizerState = 5,
  kTelemetryStore = 6,
  kServingState = 7,
  kModelManifest = 8,
  kActivePointer = 9,
  kShapeServiceState = 10,
  kKllSketch = 11,
};

/// \brief The first defect a snapshot validator encountered; kNone for an
/// intact file. Mirrors the TelemetryStore quarantine-reason style so
/// recovery can report exact per-reason counts.
enum class SnapshotDefect : int {
  kNone = 0,
  kShortHeader,          ///< fewer bytes than a header
  kBadMagic,             ///< not a snapshot file
  kBadVersion,           ///< format version this build cannot read
  kHeaderCrcMismatch,    ///< header bytes corrupted
  kWrongPayloadKind,     ///< intact, but holds a different payload type
  kTornRecord,           ///< record length overruns the file (torn write)
  kRecordCrcMismatch,    ///< record payload corrupted
  kRecordCountMismatch,  ///< fewer records than the header promises
  kTrailingGarbage,      ///< bytes after the last promised record
};
inline constexpr int kNumSnapshotDefects = 10;
const char* SnapshotDefectName(SnapshotDefect defect);

/// \brief Accumulates records and writes the container atomically.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(PayloadKind kind) : kind_(kind) {}

  /// Appends one checksummed record.
  void AddRecord(std::string_view payload);

  size_t num_records() const { return records_.size(); }

  /// The complete file image (header + records).
  std::string Finish() const;

  /// Writes Finish() to `path` atomically: temp file in the same
  /// directory, fsync, rename over the target, fsync the directory.
  Status WriteFile(const std::string& path) const;

 private:
  PayloadKind kind_;
  std::vector<std::string> records_;
};

/// \brief Validates and exposes the records of one snapshot image.
///
/// Open() never crashes on hostile bytes: every parse is bounds-checked
/// and every failure returns a Status naming the defect (also stored in
/// `*defect` when non-null, for per-reason recovery accounting).
class SnapshotReader {
 public:
  /// Takes ownership of the file image, validates the header and every
  /// record checksum. `expected_kind` guards against decoding a snapshot
  /// as the wrong type.
  static Result<SnapshotReader> Open(std::string bytes,
                                     PayloadKind expected_kind,
                                     SnapshotDefect* defect = nullptr);

  PayloadKind payload_kind() const { return kind_; }
  size_t num_records() const { return records_.size(); }

  /// Record `i`'s payload (checksum already verified); fails on
  /// out-of-range index.
  Result<std::string_view> Record(size_t i) const;

 private:
  SnapshotReader() = default;

  std::string bytes_;
  PayloadKind kind_ = PayloadKind::kShapeLibrary;
  std::vector<std::pair<size_t, size_t>> records_;  ///< offset, length
};

/// Writes `bytes` to `path` via temp file + fsync + rename + directory
/// fsync, so the target is never observed half-written.
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

/// Reads a whole file; NotFound if it does not exist.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace io
}  // namespace rvar

#endif  // RVAR_IO_SNAPSHOT_H_
