// Copyright 2026 The rvar Authors.
//
// Little-endian binary encoding primitives shared by the snapshot and WAL
// formats. The writer appends to a growable byte buffer; the reader is a
// bounds-checked cursor over an immutable byte string that returns Status
// on every malformed input (short buffer, oversized length prefix,
// non-finite doubles where finiteness is required) instead of crashing —
// the property the fuzz suite asserts.

#ifndef RVAR_IO_CODEC_H_
#define RVAR_IO_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rvar {
namespace io {

/// \brief Appends fixed-width little-endian scalars and length-prefixed
/// containers to a byte buffer.
class BinaryWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// IEEE-754 bit pattern; round-trips exactly, including NaN payloads.
  void PutDouble(double v);
  /// Raw bytes, no length prefix (format headers).
  void PutRaw(std::string_view s);
  /// u64 length prefix + raw bytes.
  void PutString(std::string_view s);
  /// u64 length prefix + packed doubles.
  void PutDoubleVector(const std::vector<double>& v);
  /// u64 length prefix + packed i32s.
  void PutI32Vector(const std::vector<int>& v);

  const std::string& bytes() const { return buffer_; }
  std::string TakeBytes() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// \brief Bounds-checked cursor over a byte string.
///
/// The view must outlive the reader. Reads never advance past the end: a
/// short buffer yields OutOfRange and leaves the cursor unchanged.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  /// Length-prefixed string; rejects prefixes larger than the remaining
  /// buffer before allocating.
  Result<std::string> ReadString();
  Result<std::vector<double>> ReadDoubleVector();
  Result<std::vector<int>> ReadI32Vector();

  /// Advances the cursor past `n` bytes, or fails without moving it.
  Status Skip(size_t n);

  size_t position() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  /// Takes `n` raw bytes or fails without moving the cursor.
  Result<std::string_view> Take(size_t n);

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace io
}  // namespace rvar

#endif  // RVAR_IO_CODEC_H_
