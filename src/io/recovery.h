// Copyright 2026 The rvar Authors.
//
// Crash-safe persistence for the serving state (DESIGN.md §7): the shape
// library plus the per-group online trackers that accumulate streaming
// observations. Observations are appended to a checksummed WAL as they
// arrive; Checkpoint() writes a versioned snapshot generation atomically
// and rotates the WAL; Recover() rebuilds the state after a crash by
// loading the newest intact snapshot generation and replaying the WAL tail
// — truncating torn writes, dropping duplicated/reordered/stale records,
// and reporting exact per-reason counts of everything it repaired
// (mirroring the TelemetryStore quarantine accounting).

#ifndef RVAR_IO_RECOVERY_H_
#define RVAR_IO_RECOVERY_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/online.h"
#include "core/shape_library.h"
#include "io/snapshot.h"
#include "io/wal.h"
#include "stats/kll_sketch.h"

namespace rvar {
namespace io {

/// \brief Why Recover() discarded or repaired something.
enum class RecoveryReason : int {
  kSnapshotCorrupt = 0,  ///< a snapshot generation failed validation
  kWalSegmentCorrupt,    ///< a segment header was unusable (whole file lost)
  kWalTornTail,          ///< a trailing partial record was truncated
  kWalCorruptRecord,     ///< a mid-file CRC mismatch dropped the rest
  kWalBadPayload,        ///< framed record held a malformed observation
  kWalDuplicate,         ///< same sequence number delivered twice
  kWalReordered,         ///< record arrived out of sequence order
  kWalStale,             ///< record already covered by the snapshot
};
inline constexpr int kNumRecoveryReasons = 8;
const char* RecoveryReasonName(RecoveryReason reason);

/// \brief Exact accounting of one Recover() pass.
struct RecoveryReport {
  /// Snapshot generation restored; -1 if recovery started from nothing.
  int64_t snapshot_generation = -1;
  /// Snapshot generations that failed validation and were skipped.
  int num_snapshots_discarded = 0;
  int num_wal_segments_scanned = 0;
  /// Observations replayed on top of the snapshot.
  int64_t wal_records_applied = 0;
  /// Bytes physically removed from torn or corrupt segment tails.
  int64_t wal_bytes_truncated = 0;
  std::array<int64_t, kNumRecoveryReasons> counts{};

  int64_t Count(RecoveryReason reason) const {
    return counts[static_cast<size_t>(reason)];
  }
  std::string ToString() const;
};

/// \brief The recoverable serving state: the shape library and the
/// per-group streaming trackers built on top of it.
struct ServingState {
  /// unique_ptr so the trackers' library pointer stays stable across
  /// moves of the ServingState itself.
  std::unique_ptr<core::ShapeLibrary> library;
  /// Ordered by group id (deterministic checkpoint images).
  std::map<int, core::OnlineShapeTracker> trackers;
  /// One bounded quantile sketch per tracked group, same keys as
  /// `trackers`: the per-group distribution summary that survives restarts
  /// alongside the discounted log-likelihood sums.
  std::map<int, KllSketch> sketches;
};

/// \brief Owns a state directory of snapshot generations and WAL segments.
///
/// Lifecycle: Open() the directory, then either Bootstrap() a fresh
/// library (first boot) or Recover() existing state; afterwards Observe()
/// appends observations durably and Checkpoint() compacts the WAL into a
/// new snapshot generation. Files are `snapshot-<generation>` and
/// `wal-<segment id>`, both zero-padded to six digits.
class RecoveryManager {
 public:
  struct Options {
    /// Tracker decay / floor used for groups first seen via Observe.
    double decay = 1.0;
    double pmf_floor = 1e-6;
    /// KllSketch accuracy knob for per-group sketches created on first
    /// sight. Snapshots embed each sketch's own k, so a directory written
    /// with one value recovers intact under another; only new groups pick
    /// up the changed setting.
    int sketch_k = 200;
    /// Snapshot generations retained after a checkpoint (>= 1). Older
    /// generations and the WAL segments they would replay are pruned.
    int keep_snapshots = 2;
    /// fsync after every Append (the durability the torn-tail recovery
    /// test relies on); disable only for throughput benchmarks.
    bool sync_each_append = true;
  };

  /// Creates the directory if needed and scans it for existing files.
  static Result<RecoveryManager> Open(const std::string& dir,
                                      const Options& options);
  static Result<RecoveryManager> Open(const std::string& dir);

  RecoveryManager(RecoveryManager&&) = default;
  RecoveryManager& operator=(RecoveryManager&&) = default;

  /// True if the directory holds at least one snapshot generation.
  bool HasState() const { return !snapshot_generations_.empty(); }

  /// Installs a fresh library as the serving state and writes the first
  /// snapshot generation. Fails if the manager is already live.
  Status Bootstrap(core::ShapeLibrary library);

  /// Rebuilds the serving state from disk: newest intact snapshot
  /// generation plus the surviving WAL records. NotFound if the directory
  /// holds no snapshot; IOError if every generation is corrupt.
  Result<RecoveryReport> Recover();

  /// Durably logs one observation and applies it to the group's tracker
  /// (created on first sight). Requires a live state.
  Status Observe(int group_id, double normalized_runtime);

  /// Writes the next snapshot generation atomically, rotates the WAL, and
  /// prunes generations/segments beyond keep_snapshots.
  Status Checkpoint();

  /// The live state (library set after Bootstrap()/Recover()).
  const ServingState& state() const { return state_; }

  /// Sequence number of the last observation logged or replayed.
  uint64_t last_sequence() const { return last_seq_; }
  int64_t generation() const { return latest_generation_; }
  const std::string& dir() const { return dir_; }

  /// Path of snapshot generation `gen` / WAL segment `segment` in `dir`
  /// (exposed for fault-injection tests).
  std::string SnapshotPath(int64_t gen) const;
  std::string WalPath(uint64_t segment) const;

 private:
  RecoveryManager(std::string dir, const Options& options)
      : dir_(std::move(dir)), options_(options) {}

  Status WriteSnapshot(int64_t generation, uint64_t next_wal_segment);
  Status RotateWal();
  void Prune();
  /// Applies one observation to the group's tracker, creating it on first
  /// sight with the manager's decay/floor options.
  Status ApplyObservation(int group_id, double value);

  std::string dir_;
  Options options_;
  ServingState state_;
  bool live_ = false;

  std::vector<int64_t> snapshot_generations_;  ///< ascending
  std::vector<uint64_t> wal_segments_;         ///< ascending
  /// generation -> id of the first WAL segment with post-snapshot
  /// observations (known for generations this process wrote or decoded).
  std::map<int64_t, uint64_t> first_segment_after_;

  int64_t latest_generation_ = 0;
  uint64_t next_segment_id_ = 1;
  uint64_t last_seq_ = 0;
  std::unique_ptr<WalWriter> wal_;
};

}  // namespace io
}  // namespace rvar

#endif  // RVAR_IO_RECOVERY_H_
