#include "ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"
#include "ml/simd_kernels.h"

namespace rvar {
namespace ml {

int Dataset::NumClasses() const {
  int max_label = -1;
  for (int label : y) max_label = std::max(max_label, label);
  return max_label + 1;
}

Status Dataset::Validate() const {
  const size_t nf = NumFeatures();
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].size() != nf) {
      return Status::InvalidArgument(
          StrCat("row ", i, " has ", x[i].size(), " features, expected ", nf));
    }
    for (size_t f = 0; f < nf; ++f) {
      if (!std::isfinite(x[i][f])) {
        return Status::InvalidArgument(
            StrCat("row ", i, " feature ", f, " is not finite"));
      }
    }
  }
  if (!x.empty() && !feature_names.empty() && feature_names.size() != nf) {
    return Status::InvalidArgument(
        StrCat("feature_names has ", feature_names.size(), " entries for ",
               nf, " features"));
  }
  if (!y.empty() && y.size() != x.size()) {
    return Status::InvalidArgument(
        StrCat("labels size ", y.size(), " != rows ", x.size()));
  }
  for (size_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0) {
      return Status::InvalidArgument(StrCat("negative label at row ", i));
    }
  }
  if (!target.empty() && target.size() != x.size()) {
    return Status::InvalidArgument(
        StrCat("targets size ", target.size(), " != rows ", x.size()));
  }
  return Status::OK();
}

Dataset Dataset::Subset(const std::vector<size_t>& idx) const {
  Dataset out;
  out.feature_names = feature_names;
  out.x.reserve(idx.size());
  for (size_t i : idx) {
    RVAR_CHECK_LT(i, x.size());
    out.x.push_back(x[i]);
    if (!y.empty()) out.y.push_back(y[i]);
    if (!target.empty()) out.target.push_back(target[i]);
  }
  return out;
}

std::vector<double> Dataset::Column(size_t f) const {
  RVAR_CHECK_LT(f, NumFeatures());
  std::vector<double> col;
  col.reserve(x.size());
  for (const auto& row : x) col.push_back(row[f]);
  return col;
}

Result<SplitDataset> TrainTestSplit(const Dataset& d, double test_fraction,
                                    Rng* rng) {
  RVAR_CHECK(rng != nullptr);
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument(
        StrCat("test_fraction must be in (0,1), got ", test_fraction));
  }
  if (d.NumRows() < 2) {
    return Status::InvalidArgument("need at least 2 rows to split");
  }
  std::vector<size_t> perm = rng->Permutation(d.NumRows());
  size_t n_test = static_cast<size_t>(
      std::round(test_fraction * static_cast<double>(d.NumRows())));
  n_test = std::clamp<size_t>(n_test, 1, d.NumRows() - 1);
  SplitDataset out;
  out.test = d.Subset({perm.begin(), perm.begin() + n_test});
  out.train = d.Subset({perm.begin() + n_test, perm.end()});
  return out;
}

Result<FeatureBinner> FeatureBinner::Fit(const Dataset& d, int max_bins) {
  if (max_bins < 2 || max_bins > 256) {
    return Status::InvalidArgument(
        StrCat("max_bins must be in [2,256], got ", max_bins));
  }
  if (d.NumRows() == 0) {
    return Status::InvalidArgument("cannot fit binner on empty dataset");
  }
  FeatureBinner binner;
  binner.edges_.resize(d.NumFeatures());
  for (size_t f = 0; f < d.NumFeatures(); ++f) {
    std::vector<double> col = d.Column(f);
    std::sort(col.begin(), col.end());
    col.erase(std::unique(col.begin(), col.end()), col.end());
    std::vector<double>& edges = binner.edges_[f];
    if (static_cast<int>(col.size()) <= max_bins) {
      // One bin per distinct value; edges at midpoints.
      for (size_t i = 0; i + 1 < col.size(); ++i) {
        edges.push_back(0.5 * (col[i] + col[i + 1]));
      }
    } else {
      // Quantile edges over distinct values.
      for (int b = 1; b < max_bins; ++b) {
        const double q =
            static_cast<double>(b) / static_cast<double>(max_bins);
        const size_t pos = std::min(
            col.size() - 1,
            static_cast<size_t>(q * static_cast<double>(col.size())));
        const double e = col[pos];
        if (edges.empty() || e > edges.back()) edges.push_back(e);
      }
    }
  }
  return binner;
}

int FeatureBinner::NumBins(size_t f) const {
  RVAR_CHECK_LT(f, edges_.size());
  return static_cast<int>(edges_[f].size()) + 1;
}

uint8_t FeatureBinner::Bin(size_t f, double v) const {
  RVAR_CHECK_LT(f, edges_.size());
  const std::vector<double>& e = edges_[f];
  // First bin whose upper edge is >= v  <=>  v <= edge.
  const auto it = std::lower_bound(e.begin(), e.end(), v);
  return static_cast<uint8_t>(it - e.begin());
}

double FeatureBinner::UpperEdge(size_t f, int b) const {
  RVAR_CHECK_LT(f, edges_.size());
  RVAR_CHECK_GE(b, 0);
  const std::vector<double>& e = edges_[f];
  if (b >= static_cast<int>(e.size())) {
    return std::numeric_limits<double>::infinity();
  }
  return e[static_cast<size_t>(b)];
}

std::vector<std::vector<uint8_t>> FeatureBinner::BinColumns(
    const Dataset& d) const {
  RVAR_CHECK_EQ(d.NumFeatures(), edges_.size());
  const size_t rows = d.NumRows();
  const size_t nf = edges_.size();
  std::vector<std::vector<uint8_t>> cols(nf);
  for (size_t f = 0; f < nf; ++f) cols[f].resize(rows);
  if (rows == 0 || nf == 0) return cols;
  // Blocks of rows are transposed into one contiguous buffer per feature
  // (each row is read once while cache resident), then each feature's
  // values run through the dispatched lower_bound kernel — the same
  // branch-free halving search Bin(f, v) resolves to, four values in
  // flight on AVX2. Any dispatch row computes the exact lower_bound
  // index (comparisons are exact predicates), so the SIMD level can
  // never change a bin. This is the training hot path: every
  // row x feature is binned once per Fit.
  const ml::SimdKernels& kern = ml::ActiveSimdKernels();
  constexpr size_t kRowBlock = 128;
  std::vector<double> transposed(kRowBlock * nf);
  for (size_t row0 = 0; row0 < rows; row0 += kRowBlock) {
    const size_t bn = std::min(kRowBlock, rows - row0);
    for (size_t i = 0; i < bn; ++i) {
      const std::vector<double>& x = d.x[row0 + i];
      for (size_t f = 0; f < nf; ++f) {
        transposed[f * kRowBlock + i] = x[f];
      }
    }
    for (size_t f = 0; f < nf; ++f) {
      const std::vector<double>& e = edges_[f];
      if (e.empty()) {
        std::fill(cols[f].begin() + static_cast<ptrdiff_t>(row0),
                  cols[f].begin() + static_cast<ptrdiff_t>(row0 + bn),
                  uint8_t{0});
        continue;
      }
      kern.lower_bound_u8(e.data(), e.size(),
                          transposed.data() + f * kRowBlock, bn,
                          cols[f].data() + row0);
    }
  }
  return cols;
}

}  // namespace ml
}  // namespace rvar
