// Copyright 2026 The rvar Authors.
//
// Random forests (bagged, feature-subsampled CART trees) for classification
// and regression. The regression forest is the substrate of the paper's
// Griffon-style baseline (Section 5, Figure 8); the classifier is one of the
// model families swept for cluster-membership prediction.

#ifndef RVAR_ML_FOREST_H_
#define RVAR_ML_FOREST_H_

#include <vector>

#include "common/rng.h"
#include "ml/model.h"
#include "ml/tree.h"

namespace rvar {
namespace ml {

/// \brief Hyper-parameters for both forest flavors.
struct ForestConfig {
  int num_trees = 100;
  TreeConfig tree;
  /// Rows drawn (with replacement) per tree as a fraction of the training
  /// set size.
  double bootstrap_fraction = 1.0;
  /// If > 0 overrides tree.max_features; if 0, uses sqrt(num_features) for
  /// classification and num_features/3 for regression (the R defaults).
  int max_features = 0;
  /// Histogram bins used for split finding.
  int max_bins = 64;
  uint64_t seed = 17;
};

/// \brief RandomForestClassifier: majority soft-vote of CART trees.
class RandomForestClassifier : public Classifier {
 public:
  explicit RandomForestClassifier(ForestConfig config = {});

  /// Reassembles a fitted forest from persisted parts (io/serialize.h);
  /// validates every tree against the feature count (importance.size())
  /// and class count before accepting.
  static Result<RandomForestClassifier> Restore(
      const ForestConfig& config, int num_classes, std::vector<Tree> trees,
      std::vector<double> importance);

  Status Fit(const Dataset& d) override;
  std::vector<double> PredictProba(
      const std::vector<double>& row) const override;
  int num_classes() const override { return num_classes_; }

  /// Mean impurity-decrease importance per feature (sums to 1 unless all
  /// zero). Valid after Fit.
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  const std::vector<Tree>& trees() const { return trees_; }
  const ForestConfig& config() const { return config_; }

 private:
  ForestConfig config_;
  int num_classes_ = 0;
  std::vector<Tree> trees_;
  // Compiled SoA view of trees_ for prediction; derived, never serialized.
  FlatForest flat_;
  std::vector<double> importance_;
};

/// \brief RandomForestRegressor: mean of CART regression trees.
class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(ForestConfig config = {});

  /// Reassembles a fitted regression forest from persisted parts.
  static Result<RandomForestRegressor> Restore(const ForestConfig& config,
                                               std::vector<Tree> trees,
                                               std::vector<double> importance);

  Status Fit(const Dataset& d) override;
  double Predict(const std::vector<double>& row) const override;

  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  const std::vector<Tree>& trees() const { return trees_; }
  const ForestConfig& config() const { return config_; }

 private:
  ForestConfig config_;
  std::vector<Tree> trees_;
  // Compiled SoA view of trees_ for prediction; derived, never serialized.
  FlatForest flat_;
  std::vector<double> importance_;
};

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_FOREST_H_
