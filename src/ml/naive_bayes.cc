#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rvar {
namespace ml {

GaussianNaiveBayes::GaussianNaiveBayes(double var_smoothing)
    : var_smoothing_(var_smoothing) {}

Status GaussianNaiveBayes::Fit(const Dataset& d) {
  RVAR_RETURN_NOT_OK(d.Validate());
  if (d.NumRows() == 0 || d.y.size() != d.NumRows()) {
    return Status::InvalidArgument("GaussianNB requires labeled rows");
  }
  num_classes_ = d.NumClasses();
  if (num_classes_ < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }
  const size_t kc = static_cast<size_t>(num_classes_);
  const size_t nf = d.NumFeatures();
  const size_t n = d.NumRows();

  std::vector<double> count(kc, 0.0);
  mean_.assign(kc, std::vector<double>(nf, 0.0));
  variance_.assign(kc, std::vector<double>(nf, 0.0));

  for (size_t i = 0; i < n; ++i) {
    const size_t c = static_cast<size_t>(d.y[i]);
    count[c] += 1.0;
    for (size_t f = 0; f < nf; ++f) mean_[c][f] += d.x[i][f];
  }
  for (size_t c = 0; c < kc; ++c) {
    if (count[c] > 0.0) {
      for (size_t f = 0; f < nf; ++f) mean_[c][f] /= count[c];
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t c = static_cast<size_t>(d.y[i]);
    for (size_t f = 0; f < nf; ++f) {
      const double delta = d.x[i][f] - mean_[c][f];
      variance_[c][f] += delta * delta;
    }
  }

  // Variance floor: var_smoothing * max overall feature variance.
  double max_var = 0.0;
  {
    std::vector<double> overall_mean(nf, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t f = 0; f < nf; ++f) overall_mean[f] += d.x[i][f];
    }
    for (size_t f = 0; f < nf; ++f) {
      overall_mean[f] /= static_cast<double>(n);
    }
    for (size_t f = 0; f < nf; ++f) {
      double var = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double delta = d.x[i][f] - overall_mean[f];
        var += delta * delta;
      }
      max_var = std::max(max_var, var / static_cast<double>(n));
    }
  }
  const double floor = std::max(var_smoothing_ * max_var, 1e-12);

  log_prior_.assign(kc, -std::numeric_limits<double>::infinity());
  for (size_t c = 0; c < kc; ++c) {
    if (count[c] > 0.0) {
      log_prior_[c] = std::log(count[c] / static_cast<double>(n));
      for (size_t f = 0; f < nf; ++f) {
        variance_[c][f] = variance_[c][f] / count[c] + floor;
      }
    } else {
      // Unseen class: neutral parameters, -inf prior keeps probability 0.
      for (size_t f = 0; f < nf; ++f) variance_[c][f] = floor;
    }
  }
  return Status::OK();
}

std::vector<double> GaussianNaiveBayes::PredictProba(
    const std::vector<double>& row) const {
  RVAR_CHECK(num_classes_ >= 2) << "PredictProba before Fit";
  const size_t kc = static_cast<size_t>(num_classes_);
  std::vector<double> log_post(kc);
  for (size_t c = 0; c < kc; ++c) {
    double lp = log_prior_[c];
    if (std::isfinite(lp)) {
      for (size_t f = 0; f < row.size(); ++f) {
        const double var = variance_[c][f];
        const double delta = row[f] - mean_[c][f];
        lp += -0.5 * std::log(2.0 * M_PI * var) - delta * delta / (2.0 * var);
      }
    }
    log_post[c] = lp;
  }
  double mx = -std::numeric_limits<double>::infinity();
  for (double v : log_post) mx = std::max(mx, v);
  double sum = 0.0;
  std::vector<double> proba(kc, 0.0);
  for (size_t c = 0; c < kc; ++c) {
    if (std::isfinite(log_post[c])) {
      proba[c] = std::exp(log_post[c] - mx);
      sum += proba[c];
    }
  }
  for (double& p : proba) p /= sum;
  return proba;
}

}  // namespace ml
}  // namespace rvar
