// Copyright 2026 The rvar Authors.
//
// Gradient-boosted decision trees in the LightGBM style: histogram-based
// split finding, leaf-wise (best-first) growth, second-order (Newton) leaf
// values, softmax multiclass objective. This is the paper's primary
// classifier (LightGBMClassifier had the highest accuracy in Section 5.2).

#ifndef RVAR_ML_GBDT_H_
#define RVAR_ML_GBDT_H_

#include <vector>

#include "common/rng.h"
#include "ml/model.h"
#include "ml/tree.h"

namespace rvar {
namespace ml {

/// \brief Hyper-parameters of the boosted ensemble.
struct GbdtConfig {
  int num_rounds = 100;
  double learning_rate = 0.1;
  /// Leaf-wise growth stops when a tree reaches this many leaves.
  int max_leaves = 31;
  int max_depth = 12;
  /// Minimum hessian-weighted sample count per leaf.
  double min_child_weight = 1.0;
  int min_samples_leaf = 5;
  /// L2 regularization on leaf values (XGBoost lambda).
  double lambda_l2 = 1.0;
  /// Minimum split gain.
  double min_gain = 1e-6;
  int max_bins = 255;
  /// Fraction of features considered per tree.
  double feature_fraction = 1.0;
  /// Fraction of rows (without replacement) per tree.
  double bagging_fraction = 1.0;
  /// Stop if validation logloss has not improved for this many rounds
  /// (requires FitWithValidation); 0 disables.
  int early_stopping_rounds = 0;
  /// Derive the larger child's histogram by subtracting the smaller
  /// child's from the cached parent histogram (≈2x less histogram work)
  /// instead of building both children from rows. Which child is built
  /// directly depends only on the partition sizes, never on the thread
  /// count, so determinism is unaffected; gains drift by at most ~1e-12
  /// relative to direct builds (see DESIGN.md §10). Off is for the
  /// equivalence tests; not serialized (training-time knob, not model
  /// state).
  bool use_hist_subtraction = true;
  uint64_t seed = 29;
};

/// \brief Multiclass gradient-boosted tree classifier.
class GbdtClassifier : public Classifier {
 public:
  explicit GbdtClassifier(GbdtConfig config = {});

  /// Reassembles a fitted classifier from persisted parts (io/serialize.h).
  /// `trees[k][r]` is the round-r tree for class k (leaf values already
  /// learning-rate scaled, as trees_for_class exposes them); `importance`
  /// is sized to the feature count, which every tree is validated against.
  /// Never crashes on hostile parts — malformed trees, size mismatches,
  /// and non-finite scores all return InvalidArgument.
  static Result<GbdtClassifier> Restore(
      const GbdtConfig& config, int num_classes,
      std::vector<double> base_scores, std::vector<std::vector<Tree>> trees,
      std::vector<double> importance);

  Status Fit(const Dataset& d) override;

  /// Fit with early stopping monitored on `valid` (multiclass logloss).
  Status FitWithValidation(const Dataset& train, const Dataset& valid);

  /// Boosts `config().num_rounds` additional rounds on top of `parent`:
  /// the parent's trees and base scores are copied in, each row's initial
  /// raw score is the parent's prediction, and new trees fit the residual
  /// gradients — the online-lifecycle retrain path, where a candidate
  /// continues from the serving model instead of relearning it. `train`
  /// must present the parent's feature count and no labels beyond its
  /// class count. Deterministic: same parent + data + config (seed) gives
  /// a bit-identical model at any thread count. The optional `valid` set
  /// enables early stopping, which truncates only the newly added rounds.
  Status FitWarmStart(const Dataset& train, const GbdtClassifier& parent,
                      const Dataset* valid = nullptr);

  std::vector<double> PredictProba(
      const std::vector<double>& row) const override;
  int num_classes() const override { return num_classes_; }

  /// Raw (pre-softmax) per-class scores; base_score + sum of tree outputs.
  std::vector<double> PredictRaw(const std::vector<double>& row) const;

  /// Allocation-free variants over the compiled FlatForest: *out is
  /// resized to num_classes and overwritten. Callers on hot paths keep one
  /// buffer per thread and reuse it across rows; results are bit-identical
  /// to PredictRaw/PredictProba.
  void PredictRawInto(const std::vector<double>& row,
                      std::vector<double>* out) const;
  void PredictProbaInto(const std::vector<double>& row,
                        std::vector<double>* out) const;

  /// Batch prediction over the compiled FlatForest: *out is resized to
  /// rows.size() * num_classes with row i's scores at [i*K, (i+1)*K).
  /// Rows are processed in blocks, tree-outer/row-inner, through the
  /// dispatched blocked-traversal kernel — one tree's arrays stay cache
  /// resident across the whole block instead of being re-streamed per
  /// row. Per row, trees accumulate in the same order as PredictRawInto,
  /// so results are bit-identical to the per-row calls at any SIMD level
  /// and thread count.
  void PredictRawBatchInto(const std::vector<std::vector<double>>& rows,
                           std::vector<double>* out) const;
  void PredictProbaBatchInto(const std::vector<std::vector<double>>& rows,
                             std::vector<double>* out) const;

  /// Total split-gain importance per feature (normalized to sum to 1).
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  /// Trees for class k across rounds (leaf values already scaled by the
  /// learning rate). Needed by TreeSHAP.
  const std::vector<Tree>& trees_for_class(int k) const;

  /// Per-class additive base score (log prior).
  double base_score(int k) const;

  /// Number of boosting rounds actually kept (== num_rounds unless early
  /// stopping truncated).
  int rounds_used() const;

  const GbdtConfig& config() const { return config_; }

 private:
  Status FitImpl(const Dataset& train, const Dataset* valid,
                 const GbdtClassifier* parent = nullptr);

  /// Rebuilds flat_ from trees_ (class-major: all rounds of class 0, then
  /// class 1, ...). Called at the end of Fit and Restore.
  void CompileFlatForest();

  GbdtConfig config_;
  int num_classes_ = 0;
  std::vector<double> base_scores_;
  // trees_[k][r]: tree for class k at round r.
  std::vector<std::vector<Tree>> trees_;
  // SoA view of trees_ for allocation-free inference; derived, never
  // serialized.
  FlatForest flat_;
  std::vector<double> importance_;
};

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_GBDT_H_
