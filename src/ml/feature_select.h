// Copyright 2026 The rvar Authors.
//
// Importance-guided correlation filtering — the paper's "passive-aggressive
// feature selection based on feature importance to avoid the use of
// correlated features" (Section 5.2): features are visited in decreasing
// importance and greedily kept unless highly correlated with an
// already-kept feature.

#ifndef RVAR_ML_FEATURE_SELECT_H_
#define RVAR_ML_FEATURE_SELECT_H_

#include <vector>

#include "common/result.h"
#include "ml/dataset.h"

namespace rvar {
namespace ml {

/// Pearson correlation of two equal-length vectors; 0 if either is
/// constant.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Full feature-feature |Pearson| correlation matrix of `d`.
std::vector<std::vector<double>> CorrelationMatrix(const Dataset& d);

/// \brief Outcome of the selection pass.
struct FeatureSelection {
  std::vector<size_t> kept;     ///< feature indices kept, importance order
  std::vector<size_t> dropped;  ///< indices dropped as redundant
};

/// Greedy selection: walk features by decreasing `importance`, keep a
/// feature iff its |correlation| with every kept feature is below
/// `max_abs_correlation`. `importance` may be empty (falls back to input
/// order). Fails if importance is non-empty with the wrong size or the
/// threshold is outside (0, 1].
Result<FeatureSelection> SelectUncorrelatedFeatures(
    const Dataset& d, const std::vector<double>& importance,
    double max_abs_correlation);

/// Projects `d` onto the kept features (names follow).
Dataset ProjectFeatures(const Dataset& d, const std::vector<size_t>& kept);

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_FEATURE_SELECT_H_
