#include "ml/tuning.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/strings.h"
#include "ml/metrics.h"

namespace rvar {
namespace ml {

Result<CvResult> CrossValidate(const Dataset& d, int folds,
                               const ClassifierFactory& factory,
                               uint64_t seed) {
  if (folds < 2) return Status::InvalidArgument("need at least 2 folds");
  if (d.NumRows() < static_cast<size_t>(folds)) {
    return Status::InvalidArgument(
        StrCat("only ", d.NumRows(), " rows for ", folds, " folds"));
  }
  if (d.y.size() != d.NumRows()) {
    return Status::InvalidArgument("cross-validation requires labels");
  }
  if (!factory) return Status::InvalidArgument("empty classifier factory");

  Rng rng(seed);
  const std::vector<size_t> perm = rng.Permutation(d.NumRows());

  CvResult result;
  result.folds = folds;
  const int num_classes = d.NumClasses();
  for (int fold = 0; fold < folds; ++fold) {
    std::vector<size_t> train_idx, test_idx;
    for (size_t i = 0; i < perm.size(); ++i) {
      (static_cast<int>(i % static_cast<size_t>(folds)) == fold ? test_idx
                                                                : train_idx)
          .push_back(perm[i]);
    }
    Dataset train = d.Subset(train_idx);
    Dataset test = d.Subset(test_idx);
    std::set<int> classes(train.y.begin(), train.y.end());
    if (static_cast<int>(classes.size()) < num_classes) {
      return Status::FailedPrecondition(
          StrCat("fold ", fold, " lost a class; use fewer folds"));
    }
    std::unique_ptr<Classifier> model = factory();
    if (model == nullptr) {
      return Status::InvalidArgument("factory returned null classifier");
    }
    RVAR_RETURN_NOT_OK(model->Fit(train));
    RVAR_ASSIGN_OR_RETURN(double acc,
                          Accuracy(test.y, model->PredictAll(test)));
    result.fold_accuracy.push_back(acc);
  }

  double sum = 0.0, sumsq = 0.0;
  for (double a : result.fold_accuracy) {
    sum += a;
    sumsq += a * a;
  }
  result.mean_accuracy = sum / folds;
  result.std_accuracy = std::sqrt(
      std::max(0.0, sumsq / folds - result.mean_accuracy * result.mean_accuracy));
  return result;
}

Result<std::vector<GridPoint>> GridSearch(
    const Dataset& d, int folds,
    const std::vector<std::pair<std::string, ClassifierFactory>>& grid,
    uint64_t seed) {
  if (grid.empty()) {
    return Status::InvalidArgument("empty hyper-parameter grid");
  }
  std::vector<GridPoint> points;
  for (const auto& [name, factory] : grid) {
    GridPoint p;
    p.name = name;
    RVAR_ASSIGN_OR_RETURN(p.cv, CrossValidate(d, folds, factory, seed));
    points.push_back(std::move(p));
  }
  std::stable_sort(points.begin(), points.end(),
                   [](const GridPoint& a, const GridPoint& b) {
                     return a.cv.mean_accuracy > b.cv.mean_accuracy;
                   });
  return points;
}

}  // namespace ml
}  // namespace rvar
