#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/strings.h"
#include "stats/distance.h"

namespace rvar {
namespace ml {
namespace {

// k-means++ seeding: first centroid uniform, then proportional to squared
// distance from the nearest chosen centroid.
std::vector<std::vector<double>> PlusPlusInit(
    const std::vector<std::vector<double>>& points, int k, Rng* rng) {
  const size_t n = points.size();
  std::vector<std::vector<double>> centroids;
  centroids.reserve(static_cast<size_t>(k));
  centroids.push_back(
      points[static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1))]);
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  while (centroids.size() < static_cast<size_t>(k)) {
    for (size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], SquaredL2(points[i], centroids.back()));
    }
    double total = 0.0;
    for (double v : d2) total += v;
    if (total <= 0.0) {
      // All points coincide with chosen centroids; duplicate one.
      centroids.push_back(points[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(n) - 1))]);
      continue;
    }
    centroids.push_back(points[rng->Categorical(d2)]);
  }
  return centroids;
}

KMeansModel RunOnce(const std::vector<std::vector<double>>& points,
                    const KMeansConfig& config, Rng* rng) {
  const size_t n = points.size();
  const size_t dim = points[0].size();
  const size_t k = static_cast<size_t>(config.k);

  KMeansModel model;
  model.centroids = PlusPlusInit(points, config.k, rng);
  model.assignments.assign(n, -1);

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    model.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = SquaredL2(points[i], model.centroids[0]);
      for (size_t c = 1; c < k; ++c) {
        const double d = SquaredL2(points[i], model.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (model.assignments[i] != best) {
        model.assignments[i] = best;
        changed = true;
      }
    }

    // Update step.
    std::vector<std::vector<double>> next(k, std::vector<double>(dim, 0.0));
    std::vector<double> counts(k, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(model.assignments[i]);
      counts[c] += 1.0;
      for (size_t d = 0; d < dim; ++d) next[c][d] += points[i][d];
    }
    double movement = 0.0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] > 0.0) {
        for (size_t d = 0; d < dim; ++d) next[c][d] /= counts[c];
      } else {
        // Empty cluster: reseed at the point farthest from its centroid.
        size_t far_i = 0;
        double far_d = -1.0;
        for (size_t i = 0; i < n; ++i) {
          const double d = SquaredL2(
              points[i],
              model.centroids[static_cast<size_t>(model.assignments[i])]);
          if (d > far_d) {
            far_d = d;
            far_i = i;
          }
        }
        next[c] = points[far_i];
      }
      movement += SquaredL2(next[c], model.centroids[c]);
    }
    model.centroids = std::move(next);
    if (!changed || movement < config.tolerance) break;
  }

  model.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    model.inertia += SquaredL2(
        points[i], model.centroids[static_cast<size_t>(model.assignments[i])]);
  }
  return model;
}

}  // namespace

int KMeansModel::Predict(const std::vector<double>& point) const {
  RVAR_CHECK(!centroids.empty());
  int best = 0;
  double best_d = SquaredL2(point, centroids[0]);
  for (size_t c = 1; c < centroids.size(); ++c) {
    const double d = SquaredL2(point, centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::vector<int> KMeansModel::ClusterSizes() const {
  std::vector<int> sizes(centroids.size(), 0);
  for (int a : assignments) sizes[static_cast<size_t>(a)]++;
  return sizes;
}

Result<KMeansModel> KMeans(const std::vector<std::vector<double>>& points,
                           const KMeansConfig& config) {
  if (points.empty()) {
    return Status::InvalidArgument("k-means on empty point set");
  }
  if (config.k < 1) {
    return Status::InvalidArgument(StrCat("k must be >= 1, got ", config.k));
  }
  if (points.size() < static_cast<size_t>(config.k)) {
    return Status::InvalidArgument(
        StrCat("k=", config.k, " exceeds point count ", points.size()));
  }
  const size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("points have inconsistent dimensions");
    }
  }
  if (config.num_restarts < 1 || config.max_iterations < 1) {
    return Status::InvalidArgument(
        "num_restarts and max_iterations must be >= 1");
  }

  Rng rng(config.seed);
  KMeansModel best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int r = 0; r < config.num_restarts; ++r) {
    Rng run_rng = rng.Split();
    KMeansModel model = RunOnce(points, config, &run_rng);
    if (model.inertia < best.inertia) best = std::move(model);
  }
  return best;
}

Result<std::vector<InertiaPoint>> InertiaSweep(
    const std::vector<std::vector<double>>& points, int k_min, int k_max,
    KMeansConfig base_config) {
  if (k_min < 1 || k_max < k_min) {
    return Status::InvalidArgument(
        StrCat("bad k range [", k_min, ", ", k_max, "]"));
  }
  std::vector<InertiaPoint> curve;
  for (int k = k_min; k <= k_max; ++k) {
    base_config.k = k;
    RVAR_ASSIGN_OR_RETURN(KMeansModel model, KMeans(points, base_config));
    curve.push_back({k, model.inertia});
  }
  return curve;
}

}  // namespace ml
}  // namespace rvar
