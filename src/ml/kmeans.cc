#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "stats/distance.h"

namespace rvar {
namespace ml {
namespace {

// k-means++ seeding: first centroid uniform, then proportional to squared
// distance from the nearest chosen centroid.
std::vector<std::vector<double>> PlusPlusInit(
    const std::vector<std::vector<double>>& points, int k, Rng* rng) {
  const size_t n = points.size();
  std::vector<std::vector<double>> centroids;
  centroids.reserve(static_cast<size_t>(k));
  centroids.push_back(
      points[static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1))]);
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  while (centroids.size() < static_cast<size_t>(k)) {
    for (size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], SquaredL2(points[i], centroids.back()));
    }
    double total = 0.0;
    for (double v : d2) total += v;
    if (total <= 0.0) {
      // All points coincide with chosen centroids; duplicate one.
      centroids.push_back(points[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(n) - 1))]);
      continue;
    }
    centroids.push_back(points[rng->Categorical(d2)]);
  }
  return centroids;
}

// Lloyd iterations from the given initial centroids. The assignment step
// is data-parallel (each point's nearest-centroid search is independent);
// the update step stays serial, so one iteration's numbers are identical
// at every thread count.
KMeansModel LloydIterate(const std::vector<std::vector<double>>& points,
                         std::vector<std::vector<double>> initial_centroids,
                         const KMeansConfig& config) {
  const size_t n = points.size();
  const size_t dim = points[0].size();
  const size_t k = initial_centroids.size();

  KMeansModel model;
  model.centroids = std::move(initial_centroids);
  model.assignments.assign(n, -1);

  for (int iter = 0; iter < config.max_iterations; ++iter) {
    model.iterations = iter + 1;
    // Assignment step: per-point writes are disjoint; the per-chunk
    // "changed" flags combine with OR, which is order-independent.
    const bool changed = ParallelReduce<uint8_t>(
        n, /*grain=*/64, 0,
        [&](size_t begin, size_t end) {
          uint8_t chunk_changed = 0;
          for (size_t i = begin; i < end; ++i) {
            int best = 0;
            double best_d = SquaredL2(points[i], model.centroids[0]);
            for (size_t c = 1; c < k; ++c) {
              const double d = SquaredL2(points[i], model.centroids[c]);
              if (d < best_d) {
                best_d = d;
                best = static_cast<int>(c);
              }
            }
            if (model.assignments[i] != best) {
              model.assignments[i] = best;
              chunk_changed = 1;
            }
          }
          return chunk_changed;
        },
        [](uint8_t acc, uint8_t part) {
          return static_cast<uint8_t>(acc | part);
        }) != 0;

    // Update step: means of the assigned points.
    std::vector<std::vector<double>> next(k, std::vector<double>(dim, 0.0));
    std::vector<double> counts(k, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(model.assignments[i]);
      counts[c] += 1.0;
      for (size_t d = 0; d < dim; ++d) next[c][d] += points[i][d];
    }
    std::vector<size_t> emptied;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] > 0.0) {
        for (size_t d = 0; d < dim; ++d) next[c][d] /= counts[c];
      } else {
        emptied.push_back(c);
      }
    }
    // Reseed emptied clusters one at a time at the point farthest from its
    // own *updated* centroid, excluding points already taken as reseeds —
    // so two clusters emptied in the same step land on distinct points.
    // (A point's assigned cluster is never empty, so next[assignment] is a
    // freshly computed mean.)
    if (!emptied.empty()) {
      std::vector<uint8_t> used(n, 0);
      for (size_t c : emptied) {
        size_t far_i = n;
        double far_d = -1.0;
        for (size_t i = 0; i < n; ++i) {
          if (used[i]) continue;
          const double d = SquaredL2(
              points[i], next[static_cast<size_t>(model.assignments[i])]);
          if (d > far_d) {
            far_d = d;
            far_i = i;
          }
        }
        RVAR_CHECK(far_i < n);  // n >= k guarantees a free point per reseed
        next[c] = points[far_i];
        used[far_i] = 1;
      }
    }
    double movement = 0.0;
    for (size_t c = 0; c < k; ++c) {
      movement += SquaredL2(next[c], model.centroids[c]);
    }
    model.centroids = std::move(next);
    if (!changed || movement < config.tolerance) break;
  }

  model.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    model.inertia += SquaredL2(
        points[i], model.centroids[static_cast<size_t>(model.assignments[i])]);
  }
  return model;
}

KMeansModel RunOnce(const std::vector<std::vector<double>>& points,
                    const KMeansConfig& config, Rng* rng) {
  return LloydIterate(points, PlusPlusInit(points, config.k, rng), config);
}

Status ValidatePoints(const std::vector<std::vector<double>>& points) {
  if (points.empty()) {
    return Status::InvalidArgument("k-means on empty point set");
  }
  const size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("points have inconsistent dimensions");
    }
  }
  return Status::OK();
}

}  // namespace

int KMeansModel::Predict(const std::vector<double>& point) const {
  RVAR_CHECK(!centroids.empty());
  int best = 0;
  double best_d = SquaredL2(point, centroids[0]);
  for (size_t c = 1; c < centroids.size(); ++c) {
    const double d = SquaredL2(point, centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::vector<int> KMeansModel::ClusterSizes() const {
  std::vector<int> sizes(centroids.size(), 0);
  for (int a : assignments) sizes[static_cast<size_t>(a)]++;
  return sizes;
}

Result<KMeansModel> KMeans(const std::vector<std::vector<double>>& points,
                           const KMeansConfig& config) {
  RVAR_RETURN_NOT_OK(ValidatePoints(points));
  if (config.k < 1) {
    return Status::InvalidArgument(StrCat("k must be >= 1, got ", config.k));
  }
  if (points.size() < static_cast<size_t>(config.k)) {
    return Status::InvalidArgument(
        StrCat("k=", config.k, " exceeds point count ", points.size()));
  }
  if (config.num_restarts < 1 || config.max_iterations < 1) {
    return Status::InvalidArgument(
        "num_restarts and max_iterations must be >= 1");
  }

  // Restarts run concurrently, each on its own pre-split Rng (the split
  // order is the serial order, so restart r sees the same stream at every
  // thread count). The winner scan keeps the first strictly-lowest
  // inertia, matching the serial loop.
  Rng rng(config.seed);
  const size_t restarts = static_cast<size_t>(config.num_restarts);
  std::vector<Rng> run_rngs;
  run_rngs.reserve(restarts);
  for (size_t r = 0; r < restarts; ++r) run_rngs.push_back(rng.Split());

  std::vector<KMeansModel> models(restarts);
  ParallelFor(restarts, /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      models[r] = RunOnce(points, config, &run_rngs[r]);
    }
  });

  KMeansModel best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (KMeansModel& model : models) {
    if (model.inertia < best.inertia) best = std::move(model);
  }
  return best;
}

Result<KMeansModel> KMeansWithInitialCentroids(
    const std::vector<std::vector<double>>& points,
    std::vector<std::vector<double>> initial_centroids,
    const KMeansConfig& config) {
  RVAR_RETURN_NOT_OK(ValidatePoints(points));
  if (initial_centroids.empty()) {
    return Status::InvalidArgument("no initial centroids");
  }
  if (points.size() < initial_centroids.size()) {
    return Status::InvalidArgument(
        StrCat("k=", initial_centroids.size(), " exceeds point count ",
               points.size()));
  }
  for (const auto& c : initial_centroids) {
    if (c.size() != points[0].size()) {
      return Status::InvalidArgument(
          "centroids and points have inconsistent dimensions");
    }
  }
  if (config.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  return LloydIterate(points, std::move(initial_centroids), config);
}

Result<std::vector<InertiaPoint>> InertiaSweep(
    const std::vector<std::vector<double>>& points, int k_min, int k_max,
    KMeansConfig base_config) {
  if (k_min < 1 || k_max < k_min) {
    return Status::InvalidArgument(
        StrCat("bad k range [", k_min, ", ", k_max, "]"));
  }
  std::vector<InertiaPoint> curve;
  for (int k = k_min; k <= k_max; ++k) {
    base_config.k = k;
    RVAR_ASSIGN_OR_RETURN(KMeansModel model, KMeans(points, base_config));
    curve.push_back({k, model.inertia});
  }
  return curve;
}

}  // namespace ml
}  // namespace rvar
