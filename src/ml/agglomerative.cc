#include "ml/agglomerative.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/strings.h"
#include "stats/distance.h"

namespace rvar {
namespace ml {

std::vector<int> AgglomerativeModel::ClusterSizes() const {
  std::vector<int> sizes(static_cast<size_t>(num_clusters), 0);
  for (int a : assignments) sizes[static_cast<size_t>(a)]++;
  return sizes;
}

double AgglomerativeModel::LargestClusterFraction() const {
  if (assignments.empty()) return 0.0;
  const std::vector<int> sizes = ClusterSizes();
  const int largest = *std::max_element(sizes.begin(), sizes.end());
  return static_cast<double>(largest) /
         static_cast<double>(assignments.size());
}

Result<AgglomerativeModel> AgglomerativeCluster(
    const std::vector<std::vector<double>>& points, int num_clusters,
    Linkage linkage) {
  const size_t n = points.size();
  if (n == 0) {
    return Status::InvalidArgument("agglomerative clustering on empty input");
  }
  if (num_clusters < 1 || static_cast<size_t>(num_clusters) > n) {
    return Status::InvalidArgument(
        StrCat("num_clusters=", num_clusters, " invalid for ", n, " points"));
  }
  const size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("points have inconsistent dimensions");
    }
  }

  // Pairwise distance matrix between active clusters; merged clusters are
  // deactivated and their row updated by the Lance-Williams rule.
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      dist[i][j] = dist[j][i] = L2(points[i], points[j]);
    }
  }
  std::vector<bool> active(n, true);
  std::vector<double> size(n, 1.0);
  // cluster_of[i]: which active cluster row point i currently belongs to.
  std::vector<size_t> cluster_of(n);
  std::iota(cluster_of.begin(), cluster_of.end(), 0);

  size_t active_count = n;
  while (active_count > static_cast<size_t>(num_clusters)) {
    // Find the closest active pair.
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (dist[i][j] < best) {
          best = dist[i][j];
          bi = i;
          bj = j;
        }
      }
    }

    // Merge bj into bi; update bi's distances per linkage.
    for (size_t m = 0; m < n; ++m) {
      if (!active[m] || m == bi || m == bj) continue;
      double d = 0.0;
      switch (linkage) {
        case Linkage::kSingle:
          d = std::min(dist[bi][m], dist[bj][m]);
          break;
        case Linkage::kComplete:
          d = std::max(dist[bi][m], dist[bj][m]);
          break;
        case Linkage::kAverage:
          d = (size[bi] * dist[bi][m] + size[bj] * dist[bj][m]) /
              (size[bi] + size[bj]);
          break;
      }
      dist[bi][m] = dist[m][bi] = d;
    }
    size[bi] += size[bj];
    active[bj] = false;
    for (size_t p = 0; p < n; ++p) {
      if (cluster_of[p] == bj) cluster_of[p] = bi;
    }
    --active_count;
  }

  // Compact active rows to ids [0, num_clusters).
  std::vector<int> remap(n, -1);
  int next_id = 0;
  for (size_t i = 0; i < n; ++i) {
    if (active[i]) remap[i] = next_id++;
  }
  AgglomerativeModel model;
  model.num_clusters = num_clusters;
  model.assignments.resize(n);
  for (size_t p = 0; p < n; ++p) {
    model.assignments[p] = remap[cluster_of[p]];
  }
  return model;
}

}  // namespace ml
}  // namespace rvar
