#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/strings.h"

namespace rvar {
namespace ml {
namespace {

void Softmax(std::vector<double>* scores) {
  double mx = -std::numeric_limits<double>::infinity();
  for (double s : *scores) mx = std::max(mx, s);
  double sum = 0.0;
  for (double& s : *scores) {
    s = std::exp(s - mx);
    sum += s;
  }
  for (double& s : *scores) s /= sum;
}

}  // namespace

GradientBoostingClassifier::GradientBoostingClassifier(
    GradientBoostingConfig config)
    : config_(config) {}

Status GradientBoostingClassifier::Fit(const Dataset& d) {
  RVAR_RETURN_NOT_OK(d.Validate());
  if (d.NumRows() == 0 || d.y.size() != d.NumRows()) {
    return Status::InvalidArgument("classification requires labeled rows");
  }
  if (config_.num_rounds <= 0 || config_.learning_rate <= 0.0) {
    return Status::InvalidArgument("num_rounds and learning_rate must be > 0");
  }
  if (config_.subsample <= 0.0 || config_.subsample > 1.0) {
    return Status::InvalidArgument("subsample must be in (0,1]");
  }
  num_classes_ = d.NumClasses();
  if (num_classes_ < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }

  const size_t n = d.NumRows();
  const size_t kc = static_cast<size_t>(num_classes_);
  RVAR_ASSIGN_OR_RETURN(FeatureBinner binner,
                        FeatureBinner::Fit(d, config_.max_bins));
  RVAR_ASSIGN_OR_RETURN(BinnedDataset binned, BinnedDataset::Make(binner, d));

  base_scores_.assign(kc, 0.0);
  {
    std::vector<double> prior(kc, 1e-9);
    for (int label : d.y) prior[static_cast<size_t>(label)] += 1.0;
    for (size_t k = 0; k < kc; ++k) {
      base_scores_[k] = std::log(prior[k] / static_cast<double>(n));
    }
  }
  std::vector<std::vector<double>> scores(n, base_scores_);

  TreeConfig tree_config;
  tree_config.max_depth = config_.max_depth;
  tree_config.min_samples_leaf = config_.min_samples_leaf;
  tree_config.min_samples_split = 2 * config_.min_samples_leaf;

  trees_.assign(kc, {});
  importance_.assign(d.NumFeatures(), 0.0);
  Rng rng(config_.seed);
  std::vector<double> residual(n), grad(n), hess(n);

  for (int round = 0; round < config_.num_rounds; ++round) {
    // Row subsample for this round (shared across classes).
    std::vector<size_t> sample_idx;
    if (config_.subsample < 1.0) {
      std::vector<size_t> perm = rng.Permutation(n);
      const size_t take = std::max<size_t>(
          1,
          static_cast<size_t>(config_.subsample * static_cast<double>(n)));
      sample_idx.assign(perm.begin(), perm.begin() + take);
    } else {
      sample_idx.resize(n);
      std::iota(sample_idx.begin(), sample_idx.end(), 0);
    }

    // Round-start probabilities.
    std::vector<std::vector<double>> proba(n);
    for (size_t i = 0; i < n; ++i) {
      proba[i] = scores[i];
      Softmax(&proba[i]);
    }

    for (size_t k = 0; k < kc; ++k) {
      for (size_t i = 0; i < n; ++i) {
        const double p = proba[i][k];
        const double target = static_cast<size_t>(d.y[i]) == k ? 1.0 : 0.0;
        residual[i] = target - p;  // negative gradient
        grad[i] = p - target;
        hess[i] = std::max(p * (1.0 - p), 1e-9);
      }
      // Depth-wise regression tree on the residuals.
      std::vector<double> gain;
      Rng tree_rng = rng.Split();
      RVAR_ASSIGN_OR_RETURN(
          Tree tree, TrainRegressionTree(binned, residual, sample_idx,
                                         tree_config, &tree_rng, &gain));
      for (size_t f = 0; f < gain.size(); ++f) importance_[f] += gain[f];

      // Newton line search per leaf: value = -G / (H + lambda) * lr,
      // computed over the full training set.
      std::vector<double> leaf_g(tree.nodes.size(), 0.0);
      std::vector<double> leaf_h(tree.nodes.size(), 0.0);
      std::vector<int> leaf_of(n);
      for (size_t i = 0; i < n; ++i) {
        const int leaf = tree.FindLeaf(d.x[i]);
        leaf_of[i] = leaf;
        leaf_g[static_cast<size_t>(leaf)] += grad[i];
        leaf_h[static_cast<size_t>(leaf)] += hess[i];
      }
      for (size_t node = 0; node < tree.nodes.size(); ++node) {
        if (tree.nodes[node].feature < 0) {
          tree.nodes[node].value = {-leaf_g[node] /
                                    (leaf_h[node] + config_.lambda_l2) *
                                    config_.learning_rate};
        }
      }
      for (size_t i = 0; i < n; ++i) {
        scores[i][k] +=
            tree.nodes[static_cast<size_t>(leaf_of[i])].value[0];
      }
      trees_[k].push_back(std::move(tree));
    }
  }

  double total = 0.0;
  for (double v : importance_) total += v;
  if (total > 0.0) {
    for (double& v : importance_) v /= total;
  }
  return Status::OK();
}

std::vector<double> GradientBoostingClassifier::PredictRaw(
    const std::vector<double>& row) const {
  RVAR_CHECK(!trees_.empty()) << "PredictRaw before Fit";
  std::vector<double> scores = base_scores_;
  for (size_t k = 0; k < trees_.size(); ++k) {
    for (const Tree& tree : trees_[k]) {
      scores[k] += tree.PredictScalar(row);
    }
  }
  return scores;
}

std::vector<double> GradientBoostingClassifier::PredictProba(
    const std::vector<double>& row) const {
  std::vector<double> scores = PredictRaw(row);
  Softmax(&scores);
  return scores;
}

}  // namespace ml
}  // namespace rvar
