#include "ml/shap.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace rvar {
namespace ml {
namespace {

// One element of the "unique path" of features encountered from root to the
// current node (Lundberg's TreeSHAP, Algorithm 2).
struct PathElement {
  int feature_index = -1;
  double zero_fraction = 0.0;  // fraction of paths flowing through when
                               // the feature is "absent"
  double one_fraction = 0.0;   // 1 if x follows this branch, else 0
  double pweight = 0.0;        // permutation weight
};

void ExtendPath(std::vector<PathElement>* path, double zero_fraction,
                double one_fraction, int feature_index) {
  const int unique_depth = static_cast<int>(path->size());
  path->push_back(
      {feature_index, zero_fraction, one_fraction,
       unique_depth == 0 ? 1.0 : 0.0});
  std::vector<PathElement>& m = *path;
  for (int i = unique_depth - 1; i >= 0; --i) {
    m[static_cast<size_t>(i + 1)].pweight +=
        one_fraction * m[static_cast<size_t>(i)].pweight *
        static_cast<double>(i + 1) / static_cast<double>(unique_depth + 1);
    m[static_cast<size_t>(i)].pweight =
        zero_fraction * m[static_cast<size_t>(i)].pweight *
        static_cast<double>(unique_depth - i) /
        static_cast<double>(unique_depth + 1);
  }
}

void UnwindPath(std::vector<PathElement>* path, int path_index) {
  std::vector<PathElement>& m = *path;
  const int unique_depth = static_cast<int>(m.size()) - 1;
  const double one_fraction =
      m[static_cast<size_t>(path_index)].one_fraction;
  const double zero_fraction =
      m[static_cast<size_t>(path_index)].zero_fraction;
  double next_one_portion = m[static_cast<size_t>(unique_depth)].pweight;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = m[static_cast<size_t>(i)].pweight;
      m[static_cast<size_t>(i)].pweight =
          next_one_portion * static_cast<double>(unique_depth + 1) /
          (static_cast<double>(i + 1) * one_fraction);
      next_one_portion =
          tmp - m[static_cast<size_t>(i)].pweight * zero_fraction *
                    static_cast<double>(unique_depth - i) /
                    static_cast<double>(unique_depth + 1);
    } else {
      m[static_cast<size_t>(i)].pweight =
          m[static_cast<size_t>(i)].pweight *
          static_cast<double>(unique_depth + 1) /
          (zero_fraction * static_cast<double>(unique_depth - i));
    }
  }
  for (int i = path_index; i < unique_depth; ++i) {
    m[static_cast<size_t>(i)].feature_index =
        m[static_cast<size_t>(i + 1)].feature_index;
    m[static_cast<size_t>(i)].zero_fraction =
        m[static_cast<size_t>(i + 1)].zero_fraction;
    m[static_cast<size_t>(i)].one_fraction =
        m[static_cast<size_t>(i + 1)].one_fraction;
  }
  m.pop_back();
}

double UnwoundPathSum(const std::vector<PathElement>& m, int path_index) {
  const int unique_depth = static_cast<int>(m.size()) - 1;
  const double one_fraction =
      m[static_cast<size_t>(path_index)].one_fraction;
  const double zero_fraction =
      m[static_cast<size_t>(path_index)].zero_fraction;
  double next_one_portion = m[static_cast<size_t>(unique_depth)].pweight;
  double total = 0.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = next_one_portion *
                         static_cast<double>(unique_depth + 1) /
                         (static_cast<double>(i + 1) * one_fraction);
      total += tmp;
      next_one_portion =
          m[static_cast<size_t>(i)].pweight -
          tmp * zero_fraction * static_cast<double>(unique_depth - i) /
              static_cast<double>(unique_depth + 1);
    } else {
      total += m[static_cast<size_t>(i)].pweight /
               (zero_fraction * static_cast<double>(unique_depth - i) /
                static_cast<double>(unique_depth + 1));
    }
  }
  return total;
}

class TreeShapComputer {
 public:
  TreeShapComputer(const Tree& tree, int output_k,
                   const std::vector<double>& x, std::vector<double>* phi)
      : tree_(tree), output_k_(static_cast<size_t>(output_k)), x_(x),
        phi_(phi) {}

  void Run() {
    std::vector<PathElement> path;
    Recurse(0, path, 1.0, 1.0, -1);
  }

 private:
  double NodeOutput(int node) const {
    const std::vector<double>& v =
        tree_.nodes[static_cast<size_t>(node)].value;
    RVAR_CHECK_LT(output_k_, v.size());
    return v[output_k_];
  }

  void Recurse(int node_index, std::vector<PathElement> path,
               double parent_zero_fraction, double parent_one_fraction,
               int parent_feature_index) {
    ExtendPath(&path, parent_zero_fraction, parent_one_fraction,
               parent_feature_index);
    const TreeNode& node = tree_.nodes[static_cast<size_t>(node_index)];

    if (node.feature < 0) {
      const double leaf_value = NodeOutput(node_index);
      const int unique_depth = static_cast<int>(path.size()) - 1;
      for (int i = 1; i <= unique_depth; ++i) {
        const double w = UnwoundPathSum(path, i);
        const PathElement& el = path[static_cast<size_t>(i)];
        (*phi_)[static_cast<size_t>(el.feature_index)] +=
            w * (el.one_fraction - el.zero_fraction) * leaf_value;
      }
      return;
    }

    const int hot =
        x_[static_cast<size_t>(node.feature)] <= node.threshold ? node.left
                                                                : node.right;
    const int cold = hot == node.left ? node.right : node.left;
    const double node_cover = std::max(node.cover, 1e-12);
    const double hot_zero_fraction =
        tree_.nodes[static_cast<size_t>(hot)].cover / node_cover;
    const double cold_zero_fraction =
        tree_.nodes[static_cast<size_t>(cold)].cover / node_cover;
    double incoming_zero_fraction = 1.0;
    double incoming_one_fraction = 1.0;

    // If this feature is already on the path, undo its previous extension.
    int path_index = -1;
    for (size_t i = 1; i < path.size(); ++i) {
      if (path[i].feature_index == node.feature) {
        path_index = static_cast<int>(i);
        break;
      }
    }
    if (path_index >= 0) {
      incoming_zero_fraction =
          path[static_cast<size_t>(path_index)].zero_fraction;
      incoming_one_fraction =
          path[static_cast<size_t>(path_index)].one_fraction;
      UnwindPath(&path, path_index);
    }

    Recurse(hot, path, hot_zero_fraction * incoming_zero_fraction,
            incoming_one_fraction, node.feature);
    Recurse(cold, path, cold_zero_fraction * incoming_zero_fraction, 0.0,
            node.feature);
  }

  const Tree& tree_;
  size_t output_k_;
  const std::vector<double>& x_;
  std::vector<double>* phi_;
};

// Cover-weighted mean leaf value: the expectation E[f(X)] the attributions
// are measured against.
double ExpectedValue(const Tree& tree, int output_k) {
  double weighted = 0.0, total = 0.0;
  for (const TreeNode& n : tree.nodes) {
    if (n.feature < 0) {
      weighted += n.cover * n.value[static_cast<size_t>(output_k)];
      total += n.cover;
    }
  }
  return total > 0.0 ? weighted / total : 0.0;
}

}  // namespace

Result<std::vector<double>> TreeShap(const Tree& tree, int output_k,
                                     const std::vector<double>& x,
                                     size_t num_features, double* base_out) {
  if (tree.empty()) {
    return Status::InvalidArgument("TreeShap on empty tree");
  }
  if (output_k < 0 ||
      static_cast<size_t>(output_k) >= tree.nodes[0].value.size()) {
    return Status::OutOfRange(StrCat("output_k=", output_k, " out of range"));
  }
  for (const TreeNode& n : tree.nodes) {
    if (n.feature >= 0 && static_cast<size_t>(n.feature) >= num_features) {
      return Status::InvalidArgument(
          "tree references a feature beyond num_features");
    }
  }
  if (x.size() < num_features) {
    return Status::InvalidArgument("instance has fewer values than features");
  }
  std::vector<double> phi(num_features, 0.0);
  TreeShapComputer computer(tree, output_k, x, &phi);
  computer.Run();
  if (base_out != nullptr) *base_out = ExpectedValue(tree, output_k);
  return phi;
}

double ShapExplanation::ReconstructedScore(int k) const {
  RVAR_CHECK_LT(static_cast<size_t>(k), phi.size());
  double acc = base[static_cast<size_t>(k)];
  for (double v : phi[static_cast<size_t>(k)]) acc += v;
  return acc;
}

Result<ShapExplanation> ShapForGbdt(const GbdtClassifier& model,
                                    const std::vector<double>& x,
                                    size_t num_features) {
  const int kc = model.num_classes();
  if (kc < 2) return Status::FailedPrecondition("model is not fitted");
  ShapExplanation out;
  out.phi.assign(static_cast<size_t>(kc),
                 std::vector<double>(num_features, 0.0));
  out.base.assign(static_cast<size_t>(kc), 0.0);
  for (int k = 0; k < kc; ++k) {
    out.base[static_cast<size_t>(k)] = model.base_score(k);
    for (const Tree& tree : model.trees_for_class(k)) {
      double base = 0.0;
      RVAR_ASSIGN_OR_RETURN(std::vector<double> phi,
                            TreeShap(tree, 0, x, num_features, &base));
      for (size_t f = 0; f < num_features; ++f) {
        out.phi[static_cast<size_t>(k)][f] += phi[f];
      }
      out.base[static_cast<size_t>(k)] += base;
    }
  }
  return out;
}

Result<ShapExplanation> ShapForForest(const RandomForestClassifier& model,
                                      const std::vector<double>& x,
                                      size_t num_features) {
  const int kc = model.num_classes();
  if (kc < 2) return Status::FailedPrecondition("model is not fitted");
  if (model.trees().empty()) {
    return Status::FailedPrecondition("model has no trees");
  }
  ShapExplanation out;
  out.phi.assign(static_cast<size_t>(kc),
                 std::vector<double>(num_features, 0.0));
  out.base.assign(static_cast<size_t>(kc), 0.0);
  const double inv = 1.0 / static_cast<double>(model.trees().size());
  for (const Tree& tree : model.trees()) {
    for (int k = 0; k < kc; ++k) {
      double base = 0.0;
      RVAR_ASSIGN_OR_RETURN(std::vector<double> phi,
                            TreeShap(tree, k, x, num_features, &base));
      for (size_t f = 0; f < num_features; ++f) {
        out.phi[static_cast<size_t>(k)][f] += inv * phi[f];
      }
      out.base[static_cast<size_t>(k)] += inv * base;
    }
  }
  return out;
}

std::vector<double> MeanAbsoluteShap(
    const std::vector<ShapExplanation>& explanations, int k) {
  if (explanations.empty()) return {};
  const size_t nf = explanations[0].phi[static_cast<size_t>(k)].size();
  std::vector<double> out(nf, 0.0);
  for (const ShapExplanation& e : explanations) {
    for (size_t f = 0; f < nf; ++f) {
      out[f] += std::fabs(e.phi[static_cast<size_t>(k)][f]);
    }
  }
  for (double& v : out) v /= static_cast<double>(explanations.size());
  return out;
}

}  // namespace ml
}  // namespace rvar
