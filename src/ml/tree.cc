#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/strings.h"
#include "ml/simd_kernels.h"

namespace rvar {
namespace ml {

int Tree::FindLeaf(const std::vector<double>& row) const {
  RVAR_CHECK(!nodes.empty());
  int i = 0;
  while (nodes[static_cast<size_t>(i)].feature >= 0) {
    const TreeNode& n = nodes[static_cast<size_t>(i)];
    RVAR_CHECK_LT(static_cast<size_t>(n.feature), row.size());
    i = row[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return i;
}

const std::vector<double>& Tree::PredictValue(
    const std::vector<double>& row) const {
  return nodes[static_cast<size_t>(FindLeaf(row))].value;
}

double Tree::PredictScalar(const std::vector<double>& row, int k) const {
  const std::vector<double>& v = PredictValue(row);
  RVAR_CHECK_LT(static_cast<size_t>(k), v.size());
  return v[static_cast<size_t>(k)];
}

int Tree::Depth() const {
  if (nodes.empty()) return -1;
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack;
  stack.reserve(nodes.size());
  stack.push_back({0, 0});
  while (!stack.empty()) {
    auto [i, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const TreeNode& n = nodes[static_cast<size_t>(i)];
    if (n.feature >= 0) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

int Tree::NumLeaves() const {
  int leaves = 0;
  for (const TreeNode& n : nodes) leaves += (n.feature < 0);
  return leaves;
}

void FlatForest::Add(const Tree& tree) {
  RVAR_CHECK(!tree.empty());
  if (roots_.empty()) {
    value_stride_ = tree.nodes[0].value.size();
    RVAR_CHECK_GT(value_stride_, 0u);
  }
  const int32_t base = static_cast<int32_t>(feature_.size());
  roots_.push_back(base);
  depth_.push_back(tree.Depth());
  feature_.reserve(feature_.size() + tree.nodes.size());
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const TreeNode& node = tree.nodes[i];
    RVAR_CHECK_EQ(node.value.size(), value_stride_);
    const int32_t self = base + static_cast<int32_t>(i);
    feature_.push_back(node.feature);
    fidx_.push_back(node.feature >= 0 ? node.feature : 0);
    threshold_.push_back(node.threshold);
    // Children are tree-local indices; relocate to forest-wide ones.
    // Leaves self-loop so the fixed-depth traversal kernel can step past
    // them as a no-op (FindLeaf exits on the feature sentinel and never
    // reads a leaf's children).
    left_.push_back(node.feature >= 0 ? base + node.left : self);
    right_.push_back(node.feature >= 0 ? base + node.right : self);
    value_.insert(value_.end(), node.value.begin(), node.value.end());
    if (node.feature >= 0) {
      num_features_ = std::max(num_features_,
                               static_cast<size_t>(node.feature) + 1);
    }
  }
}

void FlatForest::AccumulateBlock(size_t t, const double* block,
                                 size_t block_stride, size_t n, double* out,
                                 size_t out_stride, size_t k) const {
  ActiveSimdKernels().forest_accumulate(
      feature_.data(), fidx_.data(), threshold_.data(), left_.data(),
      right_.data(), value_.data(), value_stride_, k, roots_[t], depth_[t],
      block, block_stride, n, out, out_stride);
}

Result<BinnedDataset> BinnedDataset::Make(const FeatureBinner& binner,
                                          const Dataset& d) {
  if (binner.NumFeatures() != d.NumFeatures()) {
    return Status::InvalidArgument(
        StrCat("binner has ", binner.NumFeatures(), " features, dataset has ",
               d.NumFeatures()));
  }
  BinnedDataset out;
  out.binner = &binner;
  out.columns = binner.BinColumns(d);
  out.num_rows = d.NumRows();
  return out;
}

namespace {

// Shared recursive induction over an in-place-partitioned index array.
// Subclasses supply the impurity criterion via per-bin histograms.
class TreeBuilder {
 public:
  TreeBuilder(const BinnedDataset& data, const TreeConfig& config, Rng* rng,
              std::vector<double>* split_gain)
      : data_(data), config_(config), rng_(rng), split_gain_(split_gain) {
    if (split_gain_ != nullptr) {
      split_gain_->assign(data_.binner->NumFeatures(), 0.0);
    }
  }

  virtual ~TreeBuilder() = default;

  Result<Tree> Build(std::vector<size_t> sample_idx) {
    if (sample_idx.empty()) {
      return Status::InvalidArgument("cannot train a tree on zero samples");
    }
    for (size_t i : sample_idx) {
      if (i >= data_.num_rows) {
        return Status::OutOfRange(StrCat("sample index ", i, " out of range"));
      }
    }
    total_samples_ = static_cast<double>(sample_idx.size());
    idx_ = std::move(sample_idx);
    tree_.nodes.clear();
    BuildNode(0, idx_.size(), 0);
    return std::move(tree_);
  }

 protected:
  // Recomputes node totals over idx_[begin, end).
  virtual void AccumulateNode(size_t begin, size_t end) = 0;
  // Impurity of the current node (Gini / variance).
  virtual double NodeImpurity() const = 0;
  // Leaf payload of the current node.
  virtual std::vector<double> NodeValue() const = 0;
  // Best split of feature f over idx_[begin, end): returns impurity
  // decrease (or negative if none) and sets *out_bin.
  virtual double BestSplit(size_t f, size_t begin, size_t end,
                           int* out_bin) = 0;

  const BinnedDataset& data_;
  std::vector<size_t> idx_;  // working index array, partitioned in place

 private:
  int BuildNode(size_t begin, size_t end, int depth) {
    const size_t n = end - begin;
    const int node_id = static_cast<int>(tree_.nodes.size());
    tree_.nodes.emplace_back();
    AccumulateNode(begin, end);
    tree_.nodes[static_cast<size_t>(node_id)].value = NodeValue();
    tree_.nodes[static_cast<size_t>(node_id)].cover = static_cast<double>(n);

    if (depth >= config_.max_depth ||
        n < static_cast<size_t>(config_.min_samples_split) ||
        NodeImpurity() <= 0.0) {
      return node_id;
    }

    // Candidate features (random subset when max_features is set).
    const size_t nf = data_.binner->NumFeatures();
    std::vector<size_t> features(nf);
    std::iota(features.begin(), features.end(), 0);
    size_t k = nf;
    if (config_.max_features > 0 &&
        static_cast<size_t>(config_.max_features) < nf) {
      k = static_cast<size_t>(config_.max_features);
      for (size_t i = 0; i < k; ++i) {
        const size_t j = static_cast<size_t>(rng_->UniformInt(
            static_cast<int64_t>(i), static_cast<int64_t>(nf) - 1));
        std::swap(features[i], features[j]);
      }
    }

    double best_gain = -1.0;
    int best_feature = -1;
    int best_bin = -1;
    for (size_t fi = 0; fi < k; ++fi) {
      const size_t f = features[fi];
      if (data_.binner->NumBins(f) < 2) continue;
      int bin = -1;
      const double gain = BestSplit(f, begin, end, &bin);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_bin = bin;
      }
    }
    if (best_feature < 0 || best_gain < config_.min_gain) return node_id;

    const std::vector<uint8_t>& col =
        data_.columns[static_cast<size_t>(best_feature)];
    auto mid_it =
        std::partition(idx_.begin() + static_cast<ptrdiff_t>(begin),
                       idx_.begin() + static_cast<ptrdiff_t>(end),
                       [&](size_t row) {
                         return col[row] <= static_cast<uint8_t>(best_bin);
                       });
    const size_t mid = static_cast<size_t>(mid_it - idx_.begin());
    if (mid == begin || mid == end) return node_id;
    if (mid - begin < static_cast<size_t>(config_.min_samples_leaf) ||
        end - mid < static_cast<size_t>(config_.min_samples_leaf)) {
      return node_id;
    }

    if (split_gain_ != nullptr) {
      // Impurity-decrease importance weighted by the node's sample share.
      (*split_gain_)[static_cast<size_t>(best_feature)] +=
          best_gain * static_cast<double>(n) / total_samples_;
    }

    tree_.nodes[static_cast<size_t>(node_id)].feature = best_feature;
    tree_.nodes[static_cast<size_t>(node_id)].threshold =
        data_.binner->UpperEdge(static_cast<size_t>(best_feature), best_bin);
    const int left = BuildNode(begin, mid, depth + 1);
    tree_.nodes[static_cast<size_t>(node_id)].left = left;
    const int right = BuildNode(mid, end, depth + 1);
    tree_.nodes[static_cast<size_t>(node_id)].right = right;
    // Re-establish this node's totals are irrelevant now; children own them.
    return node_id;
  }

  const TreeConfig& config_;
  Rng* rng_;
  std::vector<double>* split_gain_;
  Tree tree_;
  double total_samples_ = 0.0;
};

class ClassificationBuilder : public TreeBuilder {
 public:
  ClassificationBuilder(const BinnedDataset& data,
                        const std::vector<int>& labels, int num_classes,
                        const TreeConfig& config, Rng* rng,
                        std::vector<double>* split_gain)
      : TreeBuilder(data, config, rng, split_gain),
        labels_(labels),
        num_classes_(static_cast<size_t>(num_classes)) {}

 protected:
  void AccumulateNode(size_t begin, size_t end) override {
    node_counts_.assign(num_classes_, 0.0);
    node_n_ = static_cast<double>(end - begin);
    for (size_t i = begin; i < end; ++i) {
      node_counts_[static_cast<size_t>(labels_[idx_[i]])] += 1.0;
    }
  }

  double NodeImpurity() const override { return Gini(node_counts_, node_n_); }

  std::vector<double> NodeValue() const override {
    std::vector<double> v = node_counts_;
    for (double& c : v) c /= node_n_;
    return v;
  }

  double BestSplit(size_t f, size_t begin, size_t end, int* out_bin) override {
    const int num_bins = data_.binner->NumBins(f);
    hist_.assign(static_cast<size_t>(num_bins) * num_classes_, 0.0);
    const std::vector<uint8_t>& col = data_.columns[f];
    for (size_t i = begin; i < end; ++i) {
      const size_t row = idx_[i];
      hist_[static_cast<size_t>(col[row]) * num_classes_ +
            static_cast<size_t>(labels_[row])] += 1.0;
    }

    const double parent = Gini(node_counts_, node_n_);
    std::vector<double> left(num_classes_, 0.0);
    double left_n = 0.0;
    double best_gain = -1.0;
    *out_bin = -1;
    for (int b = 0; b + 1 < num_bins; ++b) {
      for (size_t c = 0; c < num_classes_; ++c) {
        const double cnt = hist_[static_cast<size_t>(b) * num_classes_ + c];
        left[c] += cnt;
        left_n += cnt;
      }
      if (left_n <= 0.0 || left_n >= node_n_) continue;
      const double right_n = node_n_ - left_n;
      double left_sq = 0.0, right_sq = 0.0;
      for (size_t c = 0; c < num_classes_; ++c) {
        const double rc = node_counts_[c] - left[c];
        left_sq += left[c] * left[c];
        right_sq += rc * rc;
      }
      const double child = (left_n / node_n_) * (1.0 - left_sq / (left_n * left_n)) +
                           (right_n / node_n_) * (1.0 - right_sq / (right_n * right_n));
      const double gain = parent - child;
      if (gain > best_gain) {
        best_gain = gain;
        *out_bin = b;
      }
    }
    return best_gain;
  }

 private:
  static double Gini(const std::vector<double>& counts, double n) {
    if (n <= 0.0) return 0.0;
    double sq = 0.0;
    for (double c : counts) sq += c * c;
    return 1.0 - sq / (n * n);
  }

  const std::vector<int>& labels_;
  size_t num_classes_;
  std::vector<double> node_counts_;
  std::vector<double> hist_;
  double node_n_ = 0.0;
};

class RegressionBuilder : public TreeBuilder {
 public:
  RegressionBuilder(const BinnedDataset& data,
                    const std::vector<double>& targets,
                    const TreeConfig& config, Rng* rng,
                    std::vector<double>* split_gain)
      : TreeBuilder(data, config, rng, split_gain), targets_(targets) {}

 protected:
  void AccumulateNode(size_t begin, size_t end) override {
    node_n_ = static_cast<double>(end - begin);
    node_sum_ = 0.0;
    node_sumsq_ = 0.0;
    for (size_t i = begin; i < end; ++i) {
      const double t = targets_[idx_[i]];
      node_sum_ += t;
      node_sumsq_ += t * t;
    }
  }

  double NodeImpurity() const override {
    return Variance(node_sum_, node_sumsq_, node_n_);
  }

  std::vector<double> NodeValue() const override {
    return {node_n_ > 0.0 ? node_sum_ / node_n_ : 0.0};
  }

  double BestSplit(size_t f, size_t begin, size_t end, int* out_bin) override {
    const int num_bins = data_.binner->NumBins(f);
    hist_n_.assign(static_cast<size_t>(num_bins), 0.0);
    hist_sum_.assign(static_cast<size_t>(num_bins), 0.0);
    hist_sumsq_.assign(static_cast<size_t>(num_bins), 0.0);
    const std::vector<uint8_t>& col = data_.columns[f];
    for (size_t i = begin; i < end; ++i) {
      const size_t row = idx_[i];
      const size_t b = col[row];
      const double t = targets_[row];
      hist_n_[b] += 1.0;
      hist_sum_[b] += t;
      hist_sumsq_[b] += t * t;
    }

    const double parent = NodeImpurity();
    double ln = 0.0, lsum = 0.0, lsumsq = 0.0;
    double best_gain = -1.0;
    *out_bin = -1;
    for (int b = 0; b + 1 < num_bins; ++b) {
      ln += hist_n_[static_cast<size_t>(b)];
      lsum += hist_sum_[static_cast<size_t>(b)];
      lsumsq += hist_sumsq_[static_cast<size_t>(b)];
      if (ln <= 0.0 || ln >= node_n_) continue;
      const double rn = node_n_ - ln;
      const double rsum = node_sum_ - lsum;
      const double rsumsq = node_sumsq_ - lsumsq;
      const double child = (ln / node_n_) * Variance(lsum, lsumsq, ln) +
                           (rn / node_n_) * Variance(rsum, rsumsq, rn);
      const double gain = parent - child;
      if (gain > best_gain) {
        best_gain = gain;
        *out_bin = b;
      }
    }
    return best_gain;
  }

 private:
  static double Variance(double sum, double sumsq, double n) {
    if (n <= 0.0) return 0.0;
    const double mean = sum / n;
    const double v = sumsq / n - mean * mean;
    return v > 0.0 ? v : 0.0;
  }

  const std::vector<double>& targets_;
  double node_n_ = 0.0, node_sum_ = 0.0, node_sumsq_ = 0.0;
  std::vector<double> hist_n_, hist_sum_, hist_sumsq_;
};

}  // namespace

Result<Tree> TrainClassificationTree(const BinnedDataset& data,
                                     const std::vector<int>& labels,
                                     int num_classes,
                                     const std::vector<size_t>& sample_idx,
                                     const TreeConfig& config, Rng* rng,
                                     std::vector<double>* split_gain) {
  RVAR_CHECK(rng != nullptr);
  if (num_classes < 2) {
    return Status::InvalidArgument(
        StrCat("need >= 2 classes, got ", num_classes));
  }
  if (labels.size() != data.num_rows) {
    return Status::InvalidArgument("labels size != dataset rows");
  }
  for (int label : labels) {
    if (label < 0 || label >= num_classes) {
      return Status::OutOfRange(StrCat("label ", label, " outside [0,",
                                       num_classes, ")"));
    }
  }
  ClassificationBuilder builder(data, labels, num_classes, config, rng,
                                split_gain);
  return builder.Build(sample_idx);
}

Result<Tree> TrainRegressionTree(const BinnedDataset& data,
                                 const std::vector<double>& targets,
                                 const std::vector<size_t>& sample_idx,
                                 const TreeConfig& config, Rng* rng,
                                 std::vector<double>* split_gain) {
  RVAR_CHECK(rng != nullptr);
  if (targets.size() != data.num_rows) {
    return Status::InvalidArgument("targets size != dataset rows");
  }
  RegressionBuilder builder(data, targets, config, rng, split_gain);
  return builder.Build(sample_idx);
}

Status ValidateTree(const Tree& tree, int num_features, size_t value_size) {
  if (tree.empty()) {
    return Status::InvalidArgument("tree has no nodes");
  }
  const int n = static_cast<int>(tree.nodes.size());
  for (int i = 0; i < n; ++i) {
    const TreeNode& node = tree.nodes[static_cast<size_t>(i)];
    if (node.value.size() != value_size) {
      return Status::InvalidArgument(
          StrCat("node ", i, " value has ", node.value.size(),
                 " entries, expected ", value_size));
    }
    for (double v : node.value) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            StrCat("node ", i, " holds a non-finite value"));
      }
    }
    if (!std::isfinite(node.cover) || node.cover < 0.0) {
      return Status::InvalidArgument(
          StrCat("node ", i, " cover must be finite and >= 0"));
    }
    if (node.feature == -1) {
      if (node.left != -1 || node.right != -1) {
        return Status::InvalidArgument(
            StrCat("leaf node ", i, " has children"));
      }
      continue;
    }
    if (node.feature < 0 || node.feature >= num_features) {
      return Status::InvalidArgument(
          StrCat("node ", i, " splits on unknown feature ", node.feature,
                 " (model has ", num_features, ")"));
    }
    if (!std::isfinite(node.threshold)) {
      return Status::InvalidArgument(
          StrCat("node ", i, " threshold is non-finite"));
    }
    // Children must point strictly forward: this is how trained trees are
    // laid out, and it makes traversal termination a static guarantee.
    if (node.left <= i || node.left >= n || node.right <= i ||
        node.right >= n || node.left == node.right) {
      return Status::InvalidArgument(
          StrCat("node ", i, " has malformed children (", node.left, ", ",
                 node.right, ") in a ", n, "-node tree"));
    }
  }
  return Status::OK();
}

}  // namespace ml
}  // namespace rvar
