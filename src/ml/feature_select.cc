#include "ml/feature_select.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"

namespace rvar {
namespace ml {

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  RVAR_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

std::vector<std::vector<double>> CorrelationMatrix(const Dataset& d) {
  const size_t nf = d.NumFeatures();
  std::vector<std::vector<double>> cols(nf);
  for (size_t f = 0; f < nf; ++f) cols[f] = d.Column(f);
  std::vector<std::vector<double>> corr(nf, std::vector<double>(nf, 0.0));
  for (size_t i = 0; i < nf; ++i) {
    corr[i][i] = 1.0;
    for (size_t j = i + 1; j < nf; ++j) {
      const double c = std::fabs(PearsonCorrelation(cols[i], cols[j]));
      corr[i][j] = corr[j][i] = c;
    }
  }
  return corr;
}

Result<FeatureSelection> SelectUncorrelatedFeatures(
    const Dataset& d, const std::vector<double>& importance,
    double max_abs_correlation) {
  const size_t nf = d.NumFeatures();
  if (nf == 0) return Status::InvalidArgument("dataset has no features");
  if (max_abs_correlation <= 0.0 || max_abs_correlation > 1.0) {
    return Status::InvalidArgument(
        StrCat("max_abs_correlation must be in (0,1], got ",
               max_abs_correlation));
  }
  if (!importance.empty() && importance.size() != nf) {
    return Status::InvalidArgument(
        StrCat("importance has ", importance.size(), " entries for ", nf,
               " features"));
  }

  std::vector<size_t> order(nf);
  std::iota(order.begin(), order.end(), 0);
  if (!importance.empty()) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return importance[a] > importance[b];
    });
  }

  const std::vector<std::vector<double>> corr = CorrelationMatrix(d);
  FeatureSelection sel;
  for (size_t f : order) {
    bool redundant = false;
    for (size_t kept : sel.kept) {
      if (corr[f][kept] >= max_abs_correlation) {
        redundant = true;
        break;
      }
    }
    (redundant ? sel.dropped : sel.kept).push_back(f);
  }
  return sel;
}

Dataset ProjectFeatures(const Dataset& d, const std::vector<size_t>& kept) {
  Dataset out;
  out.y = d.y;
  out.target = d.target;
  for (size_t f : kept) {
    RVAR_CHECK_LT(f, d.NumFeatures());
    if (!d.feature_names.empty()) {
      out.feature_names.push_back(d.feature_names[f]);
    }
  }
  out.x.reserve(d.NumRows());
  for (const auto& row : d.x) {
    std::vector<double> new_row;
    new_row.reserve(kept.size());
    for (size_t f : kept) new_row.push_back(row[f]);
    out.x.push_back(std::move(new_row));
  }
  return out;
}

}  // namespace ml
}  // namespace rvar
