// Copyright 2026 The rvar Authors.
//
// Tabular datasets for the ML substrate: a row-major feature matrix with
// either integer class labels (classification) or real targets (regression),
// plus quantile-based feature binning shared by the tree learners
// (histogram-based split finding, the LightGBM approach).

#ifndef RVAR_ML_DATASET_H_
#define RVAR_ML_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace rvar {
namespace ml {

/// \brief A tabular learning problem.
///
/// `x` is row-major: x[i][f] is feature f of row i. Exactly one of `y`
/// (class labels in [0, num_classes)) or `target` (regression) should be
/// populated for supervised learners; both may be empty for clustering.
struct Dataset {
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  std::vector<double> target;

  size_t NumRows() const { return x.size(); }
  size_t NumFeatures() const { return x.empty() ? 0 : x[0].size(); }

  /// Number of distinct classes implied by labels (max label + 1); 0 if no
  /// labels.
  int NumClasses() const;

  /// Checks rectangularity and label/target consistency.
  Status Validate() const;

  /// Rows selected by `idx`, in order (labels/targets follow).
  Dataset Subset(const std::vector<size_t>& idx) const;

  /// One feature column as a vector.
  std::vector<double> Column(size_t f) const;
};

/// \brief Deterministic train/test split by shuffled row indices.
struct SplitDataset {
  Dataset train;
  Dataset test;
};
Result<SplitDataset> TrainTestSplit(const Dataset& d, double test_fraction,
                                    Rng* rng);

/// \brief Maps continuous feature values to small integer bins using
/// per-feature quantile edges, so tree learners can find splits by scanning
/// histograms instead of sorting.
///
/// Bin b of feature f covers (edge[b-1], edge[b]]; values above the last
/// edge fall in the last bin. The numeric threshold reported for a split
/// "bin <= b" is UpperEdge(f, b).
class FeatureBinner {
 public:
  /// Computes at most `max_bins` bins per feature from the data. max_bins
  /// must be in [2, 256].
  static Result<FeatureBinner> Fit(const Dataset& d, int max_bins);

  size_t NumFeatures() const { return edges_.size(); }

  /// Number of bins actually used for feature f (<= max_bins; small for
  /// low-cardinality features).
  int NumBins(size_t f) const;

  /// Bin index of value v for feature f.
  uint8_t Bin(size_t f, double v) const;

  /// The numeric value separating bin b from bin b+1 of feature f.
  double UpperEdge(size_t f, int b) const;

  /// Bins an entire dataset, column-major: result[f][row].
  std::vector<std::vector<uint8_t>> BinColumns(const Dataset& d) const;

 private:
  FeatureBinner() = default;
  // edges_[f] holds ascending bin upper edges; bin count = edges.size() + 1.
  std::vector<std::vector<double>> edges_;
};

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_DATASET_H_
