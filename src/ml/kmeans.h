// Copyright 2026 The rvar Authors.
//
// K-means clustering (k-means++ initialization, Lloyd iterations, multiple
// restarts). This is the algorithm the paper selects for clustering the
// runtime-distribution PMFs (Section 4.2) after finding hierarchy-based
// methods produce imbalanced clusters.

#ifndef RVAR_ML_KMEANS_H_
#define RVAR_ML_KMEANS_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace rvar {
namespace ml {

/// \brief Hyper-parameters for KMeans.
struct KMeansConfig {
  int k = 8;
  int max_iterations = 300;
  /// Independent restarts; the run with the lowest inertia wins.
  int num_restarts = 16;
  /// Convergence threshold on total centroid movement (squared L2).
  double tolerance = 1e-8;
  uint64_t seed = 23;
};

/// \brief The clustering outcome.
struct KMeansModel {
  std::vector<std::vector<double>> centroids;  ///< [cluster][dim]
  std::vector<int> assignments;                ///< per input point
  /// Sum of squared distances of points to their centroid (the paper's
  /// elbow-curve quantity).
  double inertia = 0.0;
  int iterations = 0;

  /// Index of the nearest centroid to `point`.
  int Predict(const std::vector<double>& point) const;

  /// Number of points per cluster (from `assignments`).
  std::vector<int> ClusterSizes() const;
};

/// Runs k-means on `points` (all rows must share one dimension).
/// Fails on empty input, k < 1, or fewer points than clusters.
Result<KMeansModel> KMeans(const std::vector<std::vector<double>>& points,
                           const KMeansConfig& config);

/// Lloyd iterations from explicit initial centroids (no k-means++, no
/// restarts; `config.k` and `config.seed` are ignored — k is the number of
/// centroids given). Deterministic, so callers can reproduce — or force —
/// specific iteration dynamics such as clusters emptying mid-run.
Result<KMeansModel> KMeansWithInitialCentroids(
    const std::vector<std::vector<double>>& points,
    std::vector<std::vector<double>> initial_centroids,
    const KMeansConfig& config);

/// Inertia for each k in [k_min, k_max] — the elbow curve used to choose
/// the number of clusters.
struct InertiaPoint {
  int k;
  double inertia;
};
Result<std::vector<InertiaPoint>> InertiaSweep(
    const std::vector<std::vector<double>>& points, int k_min, int k_max,
    KMeansConfig base_config);

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_KMEANS_H_
