// Copyright 2026 The rvar Authors.
//
// SIMD kernel dispatch table for the ML hot paths (DESIGN.md §14): dense
// histogram accumulation (lane-partial and sequential-masked regimes),
// histogram subtraction spans, the split-gain scan, the BinColumns bin
// search, and the binned/flat tree traversals. One function-pointer row
// per SimdLevel; the scalar row is compiled unconditionally and the
// vector rows are compiled only when CMake's RVAR_SIMD is on (x86-64).
//
// The table is the bit-identity contract: every row of a column must
// produce byte-identical outputs on identical inputs. That is possible
// because each kernel is either purely elementwise (subtraction, cell
// updates, the exact comparisons of the bin search and traversals) or
// has its reduction order fixed by definition — the lane histogram kernel
// is *specified* as four lane-local partial histograms (sample i lands in
// lane i mod 4) reduced per-cell as ((lane0+lane1)+lane2)+lane3, and the
// scalar reference implements exactly that, not a plain sequential sum;
// the split scan is specified as the sequential occupied-bin fold the
// scalar row performs, which the vector rows reproduce exactly (empty
// bins neither move the prefix sums nor produce candidates, and the
// strictly-greater running comparison is evaluated in bin order).

#ifndef RVAR_ML_SIMD_KERNELS_H_
#define RVAR_ML_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

namespace rvar {
namespace ml {

/// Doubles per histogram bin: (grad, hess, count, pad). The pad keeps a
/// cell exactly one 256-bit lane wide, so an AVX2 row update is a single
/// load/add/store of {g, h, 1.0, 0.0}; pad cells are invariantly zero.
inline constexpr size_t kHistCellStride = 4;

/// Lane count of the lane-partial histogram contract (sample i goes to
/// partial i mod kHistLanes). Fixed by the reduction-order spec; not a
/// tuning knob.
inline constexpr size_t kHistLanes = 4;

/// Doubles of scratch the lane histogram kernel needs for a feature with
/// `nb` bins: kHistLanes partial histograms of kHistCellStride * nb cells.
inline constexpr size_t HistScratchDoubles(size_t nb) {
  return kHistLanes * kHistCellStride * nb;
}

/// SoA view of one trained tree for binned-column traversal (training-time
/// score updates). feature[i] == -1 marks a leaf; rows route left when
/// cols[feature[i]][row] <= split_bin[i]; leaf_value[i] is the scalar
/// leaf output (0.0 on internal nodes).
struct BinnedTreeView {
  const int32_t* feature;
  const uint8_t* split_bin;
  const int32_t* left;
  const int32_t* right;
  const double* leaf_value;
};

/// Winner of a split scan over one feature's histogram region. The score
/// is kept as the exact rational num/den (den > 0); `bin == -1` means no
/// bin passed the constraints. The sentinel (num, den) = (-1, 1) loses to
/// any real candidate under the cross-multiplied strictly-greater compare.
struct SplitScanResult {
  double num = -1.0;
  double den = 1.0;
  double left_g = 0.0;
  double left_h = 0.0;
  int32_t bin = -1;
};

/// One dispatch row. All rows are bit-identical in output; they differ
/// only in instruction selection and (for the traversals) how many rows
/// are walked in flight.
struct SimdKernels {
  /// Lane-partial histogram accumulation for large nodes. Overwrites the
  /// whole `region` (kHistCellStride * nb doubles) with the lane-partial
  /// histogram of idx[0, n): sample i adds (gh[2*idx[i]], gh[2*idx[i]+1],
  /// 1.0) into bin col[idx[i]] of lane partial i mod kHistLanes, and each
  /// cell reduces as ((lane0 + lane1) + lane2) + lane3. `scratch` must
  /// hold HistScratchDoubles(nb) doubles (contents ignored on entry).
  void (*hist_accumulate)(const size_t* idx, size_t n, const uint8_t* col,
                          const double* gh, size_t nb, double* region,
                          double* scratch);

  /// Sequential masked accumulation for small/mid nodes: adds sample i's
  /// (g, h, 1.0) into bin b = col[idx[i]] of `region` in index order (no
  /// lanes, no clearing — the caller clears via the occupancy mask) and
  /// sets mask[b >> 6] bit (b & 63) per touched bin. Cell updates are
  /// elementwise in a fixed sequential order, so every row is exact.
  void (*hist_accumulate_masked)(const size_t* idx, size_t n,
                                 const uint8_t* col, const double* gh,
                                 double* region, uint64_t* mask);

  /// a[i] -= b[i] for i in [0, n). Elementwise, so exact at any width.
  void (*sub_span)(double* a, const double* b, size_t n);

  /// Best split over one feature's histogram `region` under the XGBoost
  /// rational-score comparison. Occupied bins are visited in ascending
  /// order over [0, last); each advances the prefix sums (gl, hl, nl) by
  /// its cell and, if it passes the constraints (nl/nr >= min_leaf,
  /// hl/hr >= min_child_weight), forms the candidate
  ///   num = gl^2*(hr+lambda) + gr^2*(hl+lambda),
  ///   den = (hl+lambda)*(hr+lambda)
  /// which replaces the running best iff num*best.den > best.num*den
  /// (strictly greater: the lowest bin wins ties). Empty bins (count ==
  /// 0.0, possible inside a derived mask) neither advance the prefix nor
  /// produce candidates. The prefix association is defined blockwise,
  /// four bins at a time, as the shift-scan of the gated values
  /// x = (bin < last && count != 0) ? cell : 0.0 (lane equations in
  /// SplitScanScalar); a block whose four bins are all gated out is
  /// skipped whole. The mask enters only as a prefilter — a block with
  /// no set mask bits is skipped without loading cells, which is exactly
  /// the defined all-empty skip because unmasked cells are exact zeros
  /// by the pool invariant. The association therefore never depends on
  /// the mask contents, n_rows, or the SIMD level, so a derived
  /// histogram (ancestor's superset mask) and a direct build of the
  /// same node compute identical candidates and identical bits, at
  /// every level.
  void (*split_scan)(const double* region, const uint64_t* mask,
                     size_t mask_words, size_t last, double n_rows,
                     double node_g, double node_h, double lambda,
                     double min_leaf, double min_child_weight,
                     SplitScanResult* out);

  /// out[i] = std::lower_bound(edges, edges + ne, values[i]) - edges for
  /// i in [0, n); requires 1 <= ne <= 255. Comparisons are the ordered
  /// `<`, so NaN maps to bin 0 and +inf past the last edge, exactly like
  /// FeatureBinner::Bin.
  void (*lower_bound_u8)(const double* edges, size_t ne, const double* values,
                         size_t n, uint8_t* out);

  /// For each row r in [begin, end): traverses `tree` by bin comparison
  /// over the per-feature column pointers and adds the reached leaf value
  /// into out[r * out_stride]. Rows are independent — one add per row —
  /// so any traversal blocking gives bit-identical results.
  void (*binned_accumulate)(const BinnedTreeView& tree,
                            const uint8_t* const* cols, size_t begin,
                            size_t end, double* out, size_t out_stride);

  /// For each row i in [0, n): traverses the FlatForest tree rooted at
  /// `root` over a feature-major transposed row block —
  /// block[f * block_stride + i] is row i's feature f — and adds element
  /// `k` of the reached leaf's values into out[i * out_stride].
  /// Requirements (FlatForest provides all three): `fidx[v]` is
  /// max(feature[v], 0) so a leaf's feature load stays in bounds;
  /// leaves self-loop (left[v] == right[v] == v), so stepping past a
  /// leaf is a no-op; `depth` is >= the tree's maximum root-to-leaf edge
  /// count, so a fixed depth-step walk always lands on the final leaf.
  /// Each row takes exactly one add of its leaf value, and the node
  /// comparisons (x <= threshold) are exact, so any walking strategy —
  /// early-exit scalar or fixed-depth vector — produces identical bits.
  void (*forest_accumulate)(const int32_t* feature, const int32_t* fidx,
                            const double* threshold, const int32_t* left,
                            const int32_t* right, const double* values,
                            size_t value_stride, size_t k, int32_t root,
                            int depth, const double* block,
                            size_t block_stride, size_t n, double* out,
                            size_t out_stride);
};

/// Dispatch rows indexed by SimdLevel. Rows above MaxSupportedSimdLevel()
/// exist (they alias scalar when RVAR_SIMD is off) but must not be called
/// above the supported level.
extern const SimdKernels kSimdKernels[kNumSimdLevels];

/// The row for ActiveSimdLevel().
inline const SimdKernels& ActiveSimdKernels() {
  return kSimdKernels[static_cast<int>(ActiveSimdLevel())];
}

namespace detail {

// Reference scalar implementations, exported so the vector TUs and the
// equivalence tests can name them directly.
void HistAccumulateScalar(const size_t* idx, size_t n, const uint8_t* col,
                          const double* gh, size_t nb, double* region,
                          double* scratch);
void HistAccumulateMaskedScalar(const size_t* idx, size_t n,
                                const uint8_t* col, const double* gh,
                                double* region, uint64_t* mask);
void SubSpanScalar(double* a, const double* b, size_t n);
void SplitScanScalar(const double* region, const uint64_t* mask,
                     size_t mask_words, size_t last, double n_rows,
                     double node_g, double node_h, double lambda,
                     double min_leaf, double min_child_weight,
                     SplitScanResult* out);
void LowerBoundU8Scalar(const double* edges, size_t ne, const double* values,
                        size_t n, uint8_t* out);
void BinnedAccumulateScalar(const BinnedTreeView& tree,
                            const uint8_t* const* cols, size_t begin,
                            size_t end, double* out, size_t out_stride);
void ForestAccumulateScalar(const int32_t* feature, const int32_t* fidx,
                            const double* threshold, const int32_t* left,
                            const int32_t* right, const double* values,
                            size_t value_stride, size_t k, int32_t root,
                            int depth, const double* block,
                            size_t block_stride, size_t n, double* out,
                            size_t out_stride);

// Four-rows-in-flight binned traversal: no special instructions, but
// breaking the per-node dependency chain across rows is where batch
// traversal time goes, so the sse42/avx2 rows share it. Parked lanes
// (already at a leaf) re-load their leaf through a guarded index until
// the block drains.
void BinnedAccumulateIlp(const BinnedTreeView& tree,
                         const uint8_t* const* cols, size_t begin, size_t end,
                         double* out, size_t out_stride);

#if defined(RVAR_SIMD_X86)
void HistAccumulateSse42(const size_t* idx, size_t n, const uint8_t* col,
                         const double* gh, size_t nb, double* region,
                         double* scratch);
void HistAccumulateMaskedSse42(const size_t* idx, size_t n,
                               const uint8_t* col, const double* gh,
                               double* region, uint64_t* mask);
void SubSpanSse42(double* a, const double* b, size_t n);
void HistAccumulateAvx2(const size_t* idx, size_t n, const uint8_t* col,
                        const double* gh, size_t nb, double* region,
                        double* scratch);
// No AVX2 masked-hist variant: the update is a 16-byte (g, h) pair add plus
// a scalar count bump, and widening it to one 32-byte RMW straddles cache
// lines (cells are 32-byte stride but only 16-byte aligned), measuring
// slower than the SSE4.2 pair add. The avx2 dispatch row reuses
// HistAccumulateMaskedSse42.
void SubSpanAvx2(double* a, const double* b, size_t n);
void SplitScanAvx2(const double* region, const uint64_t* mask,
                   size_t mask_words, size_t last, double n_rows,
                   double node_g, double node_h, double lambda,
                   double min_leaf, double min_child_weight,
                   SplitScanResult* out);
void LowerBoundU8Avx2(const double* edges, size_t ne, const double* values,
                      size_t n, uint8_t* out);
void ForestAccumulateAvx2(const int32_t* feature, const int32_t* fidx,
                          const double* threshold, const int32_t* left,
                          const int32_t* right, const double* values,
                          size_t value_stride, size_t k, int32_t root,
                          int depth, const double* block, size_t block_stride,
                          size_t n, double* out, size_t out_stride);
#endif  // RVAR_SIMD_X86

}  // namespace detail
}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_SIMD_KERNELS_H_
