// Copyright 2026 The rvar Authors.
//
// Decision trees with histogram-based split finding. One node/tree
// representation is shared by the random forest, the gradient-boosted
// ensemble, and TreeSHAP (which needs per-node covers and scalar outputs).

#ifndef RVAR_ML_TREE_H_
#define RVAR_ML_TREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/dataset.h"

namespace rvar {
namespace ml {

/// \brief One node of a binary decision tree. Rows with
/// x[feature] <= threshold go left. feature == -1 marks a leaf.
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  /// Leaf payload: class distribution for classification trees (sums to 1),
  /// a single element for regression/boosting trees. Populated on internal
  /// nodes too (used by SHAP for expectations).
  std::vector<double> value;
  /// Number of training samples (or total hessian) that reached this node.
  double cover = 0.0;
};

/// \brief A trained tree: flat node array, root at index 0.
struct Tree {
  std::vector<TreeNode> nodes;

  bool empty() const { return nodes.empty(); }

  /// Index of the leaf that `row` falls into.
  int FindLeaf(const std::vector<double>& row) const;

  /// The leaf's value vector for `row`.
  const std::vector<double>& PredictValue(const std::vector<double>& row) const;

  /// Scalar prediction: element `k` of the leaf value.
  double PredictScalar(const std::vector<double>& row, int k = 0) const;

  /// Maximum depth (root = 0); -1 for an empty tree.
  int Depth() const;

  int NumLeaves() const;
};

/// \brief Structure-of-arrays forest layout compiled from trained `Tree`s
/// for the serving hot path (DESIGN.md §10).
///
/// `Tree` keeps a heap-allocated `std::vector<double>` per node, so a
/// traversal chases a pointer per node and a prediction allocates nothing
/// only by luck of the caller. FlatForest re-lays an entire ensemble into
/// five contiguous arrays (feature / threshold / children / node-major leaf
/// values), making a prediction a handful of sequential array reads with
/// zero allocation. Traversal performs the same comparisons in the same
/// order as Tree::FindLeaf, so predictions are bit-identical to the
/// tree-walking path — `Tree` remains the source of truth for training,
/// serialization, and SHAP; FlatForest is a derived, compiled view.
class FlatForest {
 public:
  /// Appends a tree. Every added tree must share one leaf-value width;
  /// the first Add fixes value_stride(). The tree must already satisfy
  /// ValidateTree's structural invariants (trained trees do).
  void Add(const Tree& tree);

  bool empty() const { return roots_.empty(); }
  size_t num_trees() const { return roots_.size(); }
  /// Leaf values per node (1 for boosting/regression trees, K for
  /// classification forests). 0 until the first Add.
  size_t value_stride() const { return value_stride_; }
  /// 1 + the largest feature index any tree splits on; rows passed to the
  /// predict calls must hold at least this many values.
  size_t num_features() const { return num_features_; }

  /// Forest-wide index of the leaf `row` reaches in tree `t`.
  size_t FindLeaf(size_t t, const double* row) const {
    size_t i = static_cast<size_t>(roots_[t]);
    int f = feature_[i];
    while (f >= 0) {
      i = static_cast<size_t>(row[static_cast<size_t>(f)] <= threshold_[i]
                                  ? left_[i]
                                  : right_[i]);
      f = feature_[i];
    }
    return i;
  }

  /// The value_stride() leaf values `row` reaches in tree `t`.
  const double* Values(size_t t, const double* row) const {
    return &value_[FindLeaf(t, row) * value_stride_];
  }

  /// Element `k` of the leaf values `row` reaches in tree `t`.
  double PredictScalar(size_t t, const double* row, size_t k = 0) const {
    return Values(t, row)[k];
  }

  /// Batch form of `out[i * out_stride] += PredictScalar(t, row i, k)`
  /// for i in [0, n) over a feature-major transposed row block —
  /// block[f * block_stride + i] is row i's feature f (the transpose is
  /// paid once per block and amortizes over every tree of the ensemble).
  /// Dispatches to the blocked traversal kernel (simd_kernels.h), which
  /// walks several rows in flight. Each row gets exactly one add, so the
  /// result is bit-identical to the per-row calls at every SIMD level.
  void AccumulateBlock(size_t t, const double* block, size_t block_stride,
                       size_t n, double* out, size_t out_stride,
                       size_t k = 0) const;

 private:
  std::vector<int32_t> feature_;    // -1 marks a leaf
  std::vector<int32_t> fidx_;       // max(feature_, 0): guarded feature slot
  std::vector<double> threshold_;
  /// Forest-wide node indices. Leaves self-loop (left_[v] == right_[v] ==
  /// v) so a fixed-depth vector walk can keep stepping past a finished
  /// row as a no-op; FindLeaf exits on the feature sentinel first, so the
  /// scalar path never reads them.
  std::vector<int32_t> left_, right_;
  std::vector<double> value_;       // node-major, value_stride_ per node
  std::vector<int32_t> roots_;      // first node of each tree
  std::vector<int32_t> depth_;      // per-tree max root-to-leaf edge count
  size_t value_stride_ = 0;
  size_t num_features_ = 0;
};

/// Structural validation for trees decoded from disk (io/serialize.h):
/// non-empty, every node's value has `value_size` finite entries, internal
/// nodes reference in-range features and children with indices strictly
/// greater than their own (which guarantees FindLeaf terminates), leaves
/// have no children. A tree that passes cannot crash prediction no matter
/// what bytes it was decoded from.
Status ValidateTree(const Tree& tree, int num_features, size_t value_size);

/// \brief Hyper-parameters for tree induction.
struct TreeConfig {
  int max_depth = 10;
  int min_samples_leaf = 1;
  int min_samples_split = 2;
  /// Features considered per split; -1 means all.
  int max_features = -1;
  /// Minimum impurity decrease (classification: Gini; regression: variance)
  /// required to split.
  double min_gain = 1e-12;
};

/// \brief Binned view of a training set, shared across the trees of an
/// ensemble so binning happens once.
struct BinnedDataset {
  const FeatureBinner* binner = nullptr;  // not owned
  std::vector<std::vector<uint8_t>> columns;  // [feature][row]
  size_t num_rows = 0;

  static Result<BinnedDataset> Make(const FeatureBinner& binner,
                                    const Dataset& d);
};

/// \brief Trains a classification tree (leaves hold class distributions)
/// on the rows listed in `sample_idx` (duplicates allowed — bootstrap).
/// `split_gain` accumulates Gini importance per feature if non-null.
Result<Tree> TrainClassificationTree(const BinnedDataset& data,
                                     const std::vector<int>& labels,
                                     int num_classes,
                                     const std::vector<size_t>& sample_idx,
                                     const TreeConfig& config, Rng* rng,
                                     std::vector<double>* split_gain);

/// \brief Trains a regression tree (leaves hold {mean target}).
Result<Tree> TrainRegressionTree(const BinnedDataset& data,
                                 const std::vector<double>& targets,
                                 const std::vector<size_t>& sample_idx,
                                 const TreeConfig& config, Rng* rng,
                                 std::vector<double>* split_gain);

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_TREE_H_
