// Copyright 2026 The rvar Authors.
//
// Agglomerative (bottom-up hierarchical) clustering with single, complete,
// and average linkage. The paper evaluates it against k-means for clustering
// runtime-distribution PMFs and rejects it for producing imbalanced clusters
// (Section 4.2); we implement it to reproduce that comparison.

#ifndef RVAR_ML_AGGLOMERATIVE_H_
#define RVAR_ML_AGGLOMERATIVE_H_

#include <vector>

#include "common/result.h"

namespace rvar {
namespace ml {

enum class Linkage {
  kSingle,    ///< min pairwise distance
  kComplete,  ///< max pairwise distance
  kAverage,   ///< mean pairwise distance (UPGMA)
};

/// \brief Result of cutting the dendrogram at `num_clusters`.
struct AgglomerativeModel {
  std::vector<int> assignments;  ///< cluster id per input point, in [0, k)
  int num_clusters = 0;

  std::vector<int> ClusterSizes() const;

  /// Largest cluster's share of all points — the imbalance statistic the
  /// paper cites (">90% of the data in one cluster").
  double LargestClusterFraction() const;
};

/// Clusters `points` down to `num_clusters` using Lance-Williams updates.
/// O(n^2) memory and O(n^3) worst-case time; intended for the thousands of
/// job-group PMFs this study works with, not millions of raw rows.
Result<AgglomerativeModel> AgglomerativeCluster(
    const std::vector<std::vector<double>>& points, int num_clusters,
    Linkage linkage);

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_AGGLOMERATIVE_H_
