#include "ml/simd_kernels.h"

#include <algorithm>
#include <bit>

namespace rvar {
namespace ml {
namespace detail {

void HistAccumulateScalar(const size_t* idx, size_t n, const uint8_t* col,
                          const double* gh, size_t nb, double* region,
                          double* scratch) {
  static_assert(kHistLanes == 4, "lane mapping below is i & 3");
  const size_t pw = kHistCellStride * nb;  // doubles per lane partial
  std::fill(scratch, scratch + kHistLanes * pw, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const size_t row = idx[i];
    double* cell =
        scratch + (i & 3) * pw + kHistCellStride * static_cast<size_t>(col[row]);
    cell[0] += gh[2 * row];
    cell[1] += gh[2 * row + 1];
    cell[2] += 1.0;
  }
  const double* l0 = scratch;
  const double* l1 = scratch + pw;
  const double* l2 = scratch + 2 * pw;
  const double* l3 = scratch + 3 * pw;
  for (size_t c = 0; c < pw; ++c) {
    region[c] = ((l0[c] + l1[c]) + l2[c]) + l3[c];
  }
}

void HistAccumulateMaskedScalar(const size_t* idx, size_t n,
                                const uint8_t* col, const double* gh,
                                double* region, uint64_t* mask) {
  for (size_t i = 0; i < n; ++i) {
    const size_t row = idx[i];
    const size_t b = col[row];
    double* cell = region + kHistCellStride * b;
    cell[0] += gh[2 * row];
    cell[1] += gh[2 * row + 1];
    cell[2] += 1.0;
    mask[b >> 6] |= uint64_t{1} << (b & 63);
  }
}

void SubSpanScalar(double* a, const double* b, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] -= b[i];
}

void SplitScanScalar(const double* region, const uint64_t* mask,
                     size_t mask_words, size_t last, double n_rows,
                     double node_g, double node_h, double lambda,
                     double min_leaf, double min_child_weight,
                     SplitScanResult* out) {
  SplitScanResult local;
  double gl = 0.0, hl = 0.0;
  double nl = 0.0;  // exact: integer counts in double
  // Candidate evaluation against the running best, given bin b's prefix
  // sums. Shared by both prefix regimes below; the comparison fold (bin
  // order, strictly greater) is the same everywhere.
  const auto consider = [&](size_t b, double glb, double hlb, double nlb) {
    const double nr = n_rows - nlb;
    if (nlb < min_leaf || nr < min_leaf) return;
    const double hr = node_h - hlb;
    if (hlb < min_child_weight || hr < min_child_weight) return;
    const double gr = node_g - glb;
    const double bl = hlb + lambda;
    const double br = hr + lambda;
    const double num = (glb * glb) * br + (gr * gr) * bl;
    const double den = bl * br;
    if (num * local.den > local.num * den) {
      local.num = num;
      local.den = den;
      local.bin = static_cast<int32_t>(b);
      local.left_g = glb;
      local.left_h = hlb;
    }
  };
  // The prefix is computed blockwise, four bins at a time, over every
  // word with any set bit. Per block [x0..x3] of gated cell values
  //   x = (bin < last && count != 0) ? cell : 0.0
  // the defined association is the two-step shift-scan
  //   y_i = x_i + x_{i-1}          (x_{-1} = 0; y_0 = x_0 untouched)
  //   z_i = y_i + y_{i-2}          (z_0 = y_0, z_1 = y_1 untouched)
  //   p_i = z_i + carry,   carry' = p_3
  // — not the serial chain — because a 4-lane vector row computes it with
  // two shifted adds; this reference performs the identical adds
  // (including the +0.0 of empty bins), so every level produces the same
  // bits. Gated-out bins never produce a candidate, and a block whose
  // four bins are all gated out is skipped whole (defined skip — the
  // carry and candidate state are untouched, so a -0.0 carry is never
  // flushed to +0.0 by an all-zero add).
  //
  // The walk consults the mask only as a prefilter: a block none of whose
  // mask bits are set is skipped without loading cells. That skip is
  // exactly the defined all-empty skip (unmasked cells are exact zeros by
  // the pool invariant), so the result never depends on whether the mask
  // is the node's exact occupancy or an ancestor's superset — a derived
  // (subtraction) histogram and a direct build of the same node walk
  // different masks but compute identical candidates, associations, and
  // therefore bits, at every SIMD level.
  for (size_t w = 0; w < mask_words; ++w) {
    const uint64_t bits = mask[w];
    if (bits == 0) continue;
    const size_t base = w * 64;
    if (base >= last) break;
    for (size_t s = 0; s < 64; s += 4) {
      if (((bits >> s) & uint64_t{0xF}) == 0) continue;
      const size_t blk = base + s;
      if (blk >= last) break;
      double x[3][4];  // [g,h,n][lane], gate-zeroed
      bool any = false;
      for (size_t j = 0; j < 4; ++j) {
        const double* cell = region + kHistCellStride * (blk + j);
        const bool occ = blk + j < last && cell[2] != 0.0;
        any = any || occ;
        x[0][j] = occ ? cell[0] : 0.0;
        x[1][j] = occ ? cell[1] : 0.0;
        x[2][j] = occ ? cell[2] : 0.0;
      }
      if (!any) continue;
      double p[3][4];
      const double carry[3] = {gl, hl, nl};
      for (int a = 0; a < 3; ++a) {
        const double y1 = x[a][1] + x[a][0];
        const double y2 = x[a][2] + x[a][1];
        const double y3 = x[a][3] + x[a][2];
        const double z2 = y2 + x[a][0];
        const double z3 = y3 + y1;
        p[a][0] = x[a][0] + carry[a];
        p[a][1] = y1 + carry[a];
        p[a][2] = z2 + carry[a];
        p[a][3] = z3 + carry[a];
      }
      for (size_t j = 0; j < 4; ++j) {
        if (x[2][j] != 0.0) consider(blk + j, p[0][j], p[1][j], p[2][j]);
      }
      gl = p[0][3];
      hl = p[1][3];
      nl = p[2][3];
    }
  }
  *out = local;
}

void LowerBoundU8Scalar(const double* edges, size_t ne, const double* values,
                        size_t n, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const double v = values[i];
    const double* base = edges;
    size_t len = ne;
    while (len > 1) {
      const size_t half = len / 2;
      if (base[half - 1] < v) base += half;
      len -= half;
    }
    out[i] = static_cast<uint8_t>(static_cast<size_t>(base - edges) +
                                  static_cast<size_t>(base[0] < v));
  }
}

void BinnedAccumulateScalar(const BinnedTreeView& tree,
                            const uint8_t* const* cols, size_t begin,
                            size_t end, double* out, size_t out_stride) {
  for (size_t r = begin; r < end; ++r) {
    size_t i = 0;
    int32_t f = tree.feature[0];
    while (f >= 0) {
      i = static_cast<size_t>(cols[static_cast<size_t>(f)][r] <=
                                      tree.split_bin[i]
                                  ? tree.left[i]
                                  : tree.right[i]);
      f = tree.feature[i];
    }
    out[r * out_stride] += tree.leaf_value[i];
  }
}

void ForestAccumulateScalar(const int32_t* feature, const int32_t* fidx,
                            const double* threshold, const int32_t* left,
                            const int32_t* right, const double* values,
                            size_t value_stride, size_t k, int32_t root,
                            int depth, const double* block,
                            size_t block_stride, size_t n, double* out,
                            size_t out_stride) {
  // The scalar walk exits on the leaf sentinel, so the fixed-depth bound
  // and the guarded feature index go unused here.
  (void)fidx;
  (void)depth;
  for (size_t i = 0; i < n; ++i) {
    size_t node = static_cast<size_t>(root);
    int32_t f = feature[node];
    while (f >= 0) {
      node = static_cast<size_t>(
          block[static_cast<size_t>(f) * block_stride + i] <= threshold[node]
              ? left[node]
              : right[node]);
      f = feature[node];
    }
    out[i * out_stride] += values[node * value_stride + k];
  }
}

namespace {

inline void BinnedStep(const BinnedTreeView& tree, const uint8_t* const* cols,
                       size_t r, size_t& node, int32_t& f) {
  const size_t fs = static_cast<size_t>(f < 0 ? 0 : f);
  const size_t next = static_cast<size_t>(
      cols[fs][r] <= tree.split_bin[node] ? tree.left[node]
                                          : tree.right[node]);
  node = f >= 0 ? next : node;
  f = tree.feature[node];
}

}  // namespace

void BinnedAccumulateIlp(const BinnedTreeView& tree,
                         const uint8_t* const* cols, size_t begin, size_t end,
                         double* out, size_t out_stride) {
  size_t r = begin;
  for (; r + 4 <= end; r += 4) {
    size_t n0 = 0, n1 = 0, n2 = 0, n3 = 0;
    int32_t f0 = tree.feature[0];
    int32_t f1 = f0, f2 = f0, f3 = f0;
    while (f0 >= 0 || f1 >= 0 || f2 >= 0 || f3 >= 0) {
      BinnedStep(tree, cols, r + 0, n0, f0);
      BinnedStep(tree, cols, r + 1, n1, f1);
      BinnedStep(tree, cols, r + 2, n2, f2);
      BinnedStep(tree, cols, r + 3, n3, f3);
    }
    out[(r + 0) * out_stride] += tree.leaf_value[n0];
    out[(r + 1) * out_stride] += tree.leaf_value[n1];
    out[(r + 2) * out_stride] += tree.leaf_value[n2];
    out[(r + 3) * out_stride] += tree.leaf_value[n3];
  }
  if (r < end) BinnedAccumulateScalar(tree, cols, r, end, out, out_stride);
}

}  // namespace detail

// The dispatch table is const data: rows above MaxSupportedSimdLevel()
// alias the scalar implementations when the vector TUs are not built, and
// ActiveSimdLevel() never exceeds the supported level at runtime.
const SimdKernels kSimdKernels[kNumSimdLevels] = {
    {detail::HistAccumulateScalar, detail::HistAccumulateMaskedScalar,
     detail::SubSpanScalar, detail::SplitScanScalar,
     detail::LowerBoundU8Scalar, detail::BinnedAccumulateScalar,
     detail::ForestAccumulateScalar},
#if defined(RVAR_SIMD_X86)
    // SSE4.2 has no usable gather, so the bin search, split scan, and
    // forest traversal stay scalar there (always bit-safe).
    {detail::HistAccumulateSse42, detail::HistAccumulateMaskedSse42,
     detail::SubSpanSse42, detail::SplitScanScalar,
     detail::LowerBoundU8Scalar, detail::BinnedAccumulateIlp,
     detail::ForestAccumulateScalar},
    {detail::HistAccumulateAvx2, detail::HistAccumulateMaskedSse42,
     detail::SubSpanAvx2, detail::SplitScanAvx2, detail::LowerBoundU8Avx2,
     detail::BinnedAccumulateIlp, detail::ForestAccumulateAvx2},
#else
    {detail::HistAccumulateScalar, detail::HistAccumulateMaskedScalar,
     detail::SubSpanScalar, detail::SplitScanScalar,
     detail::LowerBoundU8Scalar, detail::BinnedAccumulateScalar,
     detail::ForestAccumulateScalar},
    {detail::HistAccumulateScalar, detail::HistAccumulateMaskedScalar,
     detail::SubSpanScalar, detail::SplitScanScalar,
     detail::LowerBoundU8Scalar, detail::BinnedAccumulateScalar,
     detail::ForestAccumulateScalar},
#endif
};

}  // namespace ml
}  // namespace rvar
