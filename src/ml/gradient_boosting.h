// Copyright 2026 The rvar Authors.
//
// Scikit-learn-style GradientBoostingClassifier: depth-wise trees fit to
// softmax gradients with per-leaf Newton line search. One of the classifier
// families the paper sweeps in Section 5.2 (alongside RandomForest,
// LightGBM-style GBDT, GaussianNB, and the soft-voting ensemble). Compared
// to GbdtClassifier this grows trees depth-wise without feature
// subsampling — the classical GBM formulation.

#ifndef RVAR_ML_GRADIENT_BOOSTING_H_
#define RVAR_ML_GRADIENT_BOOSTING_H_

#include <vector>

#include "ml/model.h"
#include "ml/tree.h"

namespace rvar {
namespace ml {

/// \brief Hyper-parameters of the classical GBM.
struct GradientBoostingConfig {
  int num_rounds = 100;
  double learning_rate = 0.1;
  int max_depth = 3;  ///< sklearn's default: shallow depth-wise trees
  int min_samples_leaf = 5;
  /// L2 regularization on the Newton leaf values.
  double lambda_l2 = 1.0;
  /// Fraction of rows (without replacement) per tree; 1 disables
  /// stochastic gradient boosting.
  double subsample = 1.0;
  int max_bins = 128;
  uint64_t seed = 41;
};

/// \brief Multiclass gradient boosting with depth-wise regression trees.
class GradientBoostingClassifier : public Classifier {
 public:
  explicit GradientBoostingClassifier(GradientBoostingConfig config = {});

  Status Fit(const Dataset& d) override;
  std::vector<double> PredictProba(
      const std::vector<double>& row) const override;
  int num_classes() const override { return num_classes_; }

  /// Raw (pre-softmax) per-class scores.
  std::vector<double> PredictRaw(const std::vector<double>& row) const;

  /// Variance-reduction importance accumulated over all trees, normalized.
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

 private:
  GradientBoostingConfig config_;
  int num_classes_ = 0;
  std::vector<double> base_scores_;
  std::vector<std::vector<Tree>> trees_;  ///< [class][round]
  std::vector<double> importance_;
};

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_GRADIENT_BOOSTING_H_
