// Copyright 2026 The rvar Authors.
//
// Evaluation metrics for the prediction study: accuracy, confusion matrices
// (Figure 7a), per-class precision/recall, regression errors.

#ifndef RVAR_ML_METRICS_H_
#define RVAR_ML_METRICS_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace rvar {
namespace ml {

/// Fraction of predictions equal to the truth. Fails on size mismatch or
/// empty input.
Result<double> Accuracy(const std::vector<int>& truth,
                        const std::vector<int>& predicted);

/// \brief Row-normalized confusion matrix: cell (actual, predicted) holds
/// the fraction of class-`actual` examples predicted as `predicted`
/// (each non-empty row sums to 1) — the layout of the paper's Figure 7a.
struct ConfusionMatrix {
  std::vector<std::vector<double>> fractions;  ///< [actual][predicted]
  std::vector<std::vector<int>> counts;        ///< raw counts
  int num_classes = 0;

  /// Fraction of all examples on the diagonal (== accuracy).
  double DiagonalMass() const;

  /// Renders with one row per actual class.
  std::string ToString() const;
};
Result<ConfusionMatrix> BuildConfusionMatrix(const std::vector<int>& truth,
                                             const std::vector<int>& predicted,
                                             int num_classes);

/// Per-class precision, recall, F1.
struct ClassReport {
  int cls = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int support = 0;
};
Result<std::vector<ClassReport>> ClassificationReport(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    int num_classes);

/// Mean absolute error between paired vectors.
Result<double> MeanAbsoluteError(const std::vector<double>& truth,
                                 const std::vector<double>& predicted);

/// Root mean squared error between paired vectors.
Result<double> RootMeanSquaredError(const std::vector<double>& truth,
                                    const std::vector<double>& predicted);

/// Multiclass log loss given per-row probability vectors.
Result<double> LogLoss(const std::vector<int>& truth,
                       const std::vector<std::vector<double>>& proba);

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_METRICS_H_
