// SSE4.2 rows of the kernel dispatch table. Compiled with -msse4.2 only;
// nothing here may be called unless cpuid reported the level (see
// common/simd.h), so the TU never leaks illegal instructions into the
// baseline code paths.

#include <nmmintrin.h>

#include <algorithm>

#include "ml/simd_kernels.h"

#if !defined(RVAR_SIMD_X86)
#error "simd_kernels_sse42.cc requires RVAR_SIMD"
#endif

namespace rvar {
namespace ml {
namespace detail {

void HistAccumulateSse42(const size_t* idx, size_t n, const uint8_t* col,
                         const double* gh, size_t nb, double* region,
                         double* scratch) {
  const size_t pw = kHistCellStride * nb;
  std::fill(scratch, scratch + kHistLanes * pw, 0.0);
  // The (grad, hess) pair of a cell updates with one 128-bit add; the
  // count is a scalar add, exactly matching the reference elementwise.
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (size_t l = 0; l < 4; ++l) {
      const size_t row = idx[i + l];
      double* cell = scratch + l * pw +
                     kHistCellStride * static_cast<size_t>(col[row]);
      _mm_storeu_pd(cell, _mm_add_pd(_mm_loadu_pd(cell),
                                     _mm_loadu_pd(gh + 2 * row)));
      cell[2] += 1.0;
    }
  }
  for (; i < n; ++i) {
    const size_t row = idx[i];
    double* cell = scratch + (i & 3) * pw +
                   kHistCellStride * static_cast<size_t>(col[row]);
    cell[0] += gh[2 * row];
    cell[1] += gh[2 * row + 1];
    cell[2] += 1.0;
  }
  const double* l0 = scratch;
  const double* l1 = scratch + pw;
  const double* l2 = scratch + 2 * pw;
  const double* l3 = scratch + 3 * pw;
  for (size_t c = 0; c < pw; c += 2) {
    const __m128d s01 = _mm_add_pd(_mm_loadu_pd(l0 + c), _mm_loadu_pd(l1 + c));
    const __m128d s012 = _mm_add_pd(s01, _mm_loadu_pd(l2 + c));
    _mm_storeu_pd(region + c, _mm_add_pd(s012, _mm_loadu_pd(l3 + c)));
  }
}

void HistAccumulateMaskedSse42(const size_t* idx, size_t n,
                               const uint8_t* col, const double* gh,
                               double* region, uint64_t* mask) {
  // Same sequential index order as the scalar reference; only the
  // (grad, hess) pair add is widened, which is elementwise-exact.
  for (size_t i = 0; i < n; ++i) {
    const size_t row = idx[i];
    const size_t b = col[row];
    double* cell = region + kHistCellStride * b;
    _mm_storeu_pd(cell,
                  _mm_add_pd(_mm_loadu_pd(cell), _mm_loadu_pd(gh + 2 * row)));
    cell[2] += 1.0;
    mask[b >> 6] |= uint64_t{1} << (b & 63);
  }
}

void SubSpanSse42(double* a, const double* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(a + i, _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
  }
  for (; i < n; ++i) a[i] -= b[i];
}

}  // namespace detail
}  // namespace ml
}  // namespace rvar
