// Copyright 2026 The rvar Authors.
//
// Hyper-parameter tooling: k-fold cross-validation over any Classifier
// factory and a generic grid search — the paper's "parameter sweeping to
// select the best hyper-parameters" (Section 5.2).

#ifndef RVAR_ML_TUNING_H_
#define RVAR_ML_TUNING_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/model.h"

namespace rvar {
namespace ml {

/// Builds a fresh, unfitted classifier for each fold.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

/// \brief Accuracy statistics across folds.
struct CvResult {
  int folds = 0;
  double mean_accuracy = 0.0;
  double std_accuracy = 0.0;
  std::vector<double> fold_accuracy;
};

/// Stratification-free k-fold CV: shuffles rows, trains on k-1 folds,
/// scores accuracy on the held-out fold. Fails if a training fold loses a
/// class entirely (use more data or fewer folds), on folds < 2, or when
/// rows < folds.
Result<CvResult> CrossValidate(const Dataset& d, int folds,
                               const ClassifierFactory& factory,
                               uint64_t seed = 11);

/// \brief One grid-search candidate with its CV outcome.
struct GridPoint {
  std::string name;  ///< human-readable parameter description
  CvResult cv;
};

/// Runs CV for every named candidate and returns them sorted by mean
/// accuracy (best first). Candidate order breaks ties.
Result<std::vector<GridPoint>> GridSearch(
    const Dataset& d, int folds,
    const std::vector<std::pair<std::string, ClassifierFactory>>& grid,
    uint64_t seed = 11);

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_TUNING_H_
