#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "common/table.h"

namespace rvar {
namespace ml {
namespace {

Status CheckPaired(size_t a, size_t b) {
  if (a != b) {
    return Status::InvalidArgument(
        StrCat("size mismatch: ", a, " vs ", b));
  }
  if (a == 0) return Status::InvalidArgument("empty input");
  return Status::OK();
}

}  // namespace

Result<double> Accuracy(const std::vector<int>& truth,
                        const std::vector<int>& predicted) {
  RVAR_RETURN_NOT_OK(CheckPaired(truth.size(), predicted.size()));
  int64_t hits = 0;
  for (size_t i = 0; i < truth.size(); ++i) hits += (truth[i] == predicted[i]);
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double ConfusionMatrix::DiagonalMass() const {
  int64_t diag = 0, total = 0;
  for (int a = 0; a < num_classes; ++a) {
    for (int p = 0; p < num_classes; ++p) {
      const int c = counts[static_cast<size_t>(a)][static_cast<size_t>(p)];
      total += c;
      if (a == p) diag += c;
    }
  }
  return total > 0 ? static_cast<double>(diag) / static_cast<double>(total)
                   : 0.0;
}

std::string ConfusionMatrix::ToString() const {
  TextTable table;
  std::vector<std::string> header = {"actual\\pred"};
  for (int p = 0; p < num_classes; ++p) header.push_back(StrCat(p));
  table.SetHeader(header);
  for (int a = 0; a < num_classes; ++a) {
    std::vector<std::string> row = {StrCat(a)};
    for (int p = 0; p < num_classes; ++p) {
      row.push_back(FormatDouble(
          fractions[static_cast<size_t>(a)][static_cast<size_t>(p)], 3));
    }
    table.AddRow(row);
  }
  return table.ToString();
}

Result<ConfusionMatrix> BuildConfusionMatrix(const std::vector<int>& truth,
                                             const std::vector<int>& predicted,
                                             int num_classes) {
  RVAR_RETURN_NOT_OK(CheckPaired(truth.size(), predicted.size()));
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }
  ConfusionMatrix cm;
  cm.num_classes = num_classes;
  cm.counts.assign(static_cast<size_t>(num_classes),
                   std::vector<int>(static_cast<size_t>(num_classes), 0));
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] < 0 || truth[i] >= num_classes || predicted[i] < 0 ||
        predicted[i] >= num_classes) {
      return Status::OutOfRange(
          StrCat("label out of range at row ", i, ": truth=", truth[i],
                 " pred=", predicted[i]));
    }
    cm.counts[static_cast<size_t>(truth[i])]
             [static_cast<size_t>(predicted[i])]++;
  }
  cm.fractions.assign(static_cast<size_t>(num_classes),
                      std::vector<double>(static_cast<size_t>(num_classes),
                                          0.0));
  for (int a = 0; a < num_classes; ++a) {
    int row_total = 0;
    for (int p = 0; p < num_classes; ++p) {
      row_total += cm.counts[static_cast<size_t>(a)][static_cast<size_t>(p)];
    }
    if (row_total > 0) {
      for (int p = 0; p < num_classes; ++p) {
        cm.fractions[static_cast<size_t>(a)][static_cast<size_t>(p)] =
            static_cast<double>(
                cm.counts[static_cast<size_t>(a)][static_cast<size_t>(p)]) /
            static_cast<double>(row_total);
      }
    }
  }
  return cm;
}

Result<std::vector<ClassReport>> ClassificationReport(
    const std::vector<int>& truth, const std::vector<int>& predicted,
    int num_classes) {
  RVAR_ASSIGN_OR_RETURN(ConfusionMatrix cm,
                        BuildConfusionMatrix(truth, predicted, num_classes));
  std::vector<ClassReport> reports;
  for (int c = 0; c < num_classes; ++c) {
    ClassReport r;
    r.cls = c;
    int tp = cm.counts[static_cast<size_t>(c)][static_cast<size_t>(c)];
    int actual = 0, predicted_as = 0;
    for (int o = 0; o < num_classes; ++o) {
      actual += cm.counts[static_cast<size_t>(c)][static_cast<size_t>(o)];
      predicted_as += cm.counts[static_cast<size_t>(o)][static_cast<size_t>(c)];
    }
    r.support = actual;
    r.precision = predicted_as > 0
                      ? static_cast<double>(tp) / predicted_as
                      : 0.0;
    r.recall = actual > 0 ? static_cast<double>(tp) / actual : 0.0;
    r.f1 = (r.precision + r.recall) > 0.0
               ? 2.0 * r.precision * r.recall / (r.precision + r.recall)
               : 0.0;
    reports.push_back(r);
  }
  return reports;
}

Result<double> MeanAbsoluteError(const std::vector<double>& truth,
                                 const std::vector<double>& predicted) {
  RVAR_RETURN_NOT_OK(CheckPaired(truth.size(), predicted.size()));
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    acc += std::fabs(truth[i] - predicted[i]);
  }
  return acc / static_cast<double>(truth.size());
}

Result<double> RootMeanSquaredError(const std::vector<double>& truth,
                                    const std::vector<double>& predicted) {
  RVAR_RETURN_NOT_OK(CheckPaired(truth.size(), predicted.size()));
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

Result<double> LogLoss(const std::vector<int>& truth,
                       const std::vector<std::vector<double>>& proba) {
  RVAR_RETURN_NOT_OK(CheckPaired(truth.size(), proba.size()));
  double loss = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] < 0 || static_cast<size_t>(truth[i]) >= proba[i].size()) {
      return Status::OutOfRange(StrCat("label out of range at row ", i));
    }
    loss -= std::log(std::max(proba[i][static_cast<size_t>(truth[i])], 1e-12));
  }
  return loss / static_cast<double>(truth.size());
}

}  // namespace ml
}  // namespace rvar
