// Copyright 2026 The rvar Authors.
//
// Soft-voting ensemble: averages the class-probability outputs of a set of
// base classifiers (the paper's EnsembledClassifier, Section 5.2).

#ifndef RVAR_ML_ENSEMBLE_H_
#define RVAR_ML_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace rvar {
namespace ml {

/// \brief Owns base classifiers and soft-votes their probabilities,
/// optionally with per-model weights.
class VotingClassifier : public Classifier {
 public:
  VotingClassifier() = default;

  /// Adds a base model (before Fit). Weight must be positive.
  void AddModel(std::unique_ptr<Classifier> model, double weight = 1.0);

  size_t num_models() const { return models_.size(); }

  Status Fit(const Dataset& d) override;
  std::vector<double> PredictProba(
      const std::vector<double>& row) const override;
  int num_classes() const override { return num_classes_; }

 private:
  std::vector<std::unique_ptr<Classifier>> models_;
  std::vector<double> weights_;
  int num_classes_ = 0;
};

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_ENSEMBLE_H_
