// AVX2 rows of the kernel dispatch table. Compiled with -mavx2 only (no
// -mfma: the kernels are add/sub/compare-only, and contraction could
// change bits); nothing here may be called unless cpuid reported the
// level (see common/simd.h).

#include <immintrin.h>

#include <algorithm>
#include <bit>

#include "ml/simd_kernels.h"

#if !defined(RVAR_SIMD_X86)
#error "simd_kernels_avx2.cc requires RVAR_SIMD"
#endif

namespace rvar {
namespace ml {
namespace detail {

void HistAccumulateAvx2(const size_t* idx, size_t n, const uint8_t* col,
                        const double* gh, size_t nb, double* region,
                        double* scratch) {
  const size_t pw = kHistCellStride * nb;
  std::fill(scratch, scratch + kHistLanes * pw, 0.0);
  // A cell is exactly one 256-bit lane: (grad, hess, count, pad). Each
  // sample update is a single load/add/store of {g, h, 1.0, 0.0} — the
  // pad adds 0.0 + 0.0, which is what the reference's "never touched"
  // leaves behind, so the cells stay bit-identical elementwise.
  //
  // Two lane-groups of four samples run per iteration: samples i and
  // i + 4 share lane i mod 4, and the group-two loads are issued after
  // the group-one stores in program order, so a same-lane same-bin
  // collision still reads the freshly written cell. Within a group the
  // four updates land in distinct lane partials, so they never alias —
  // that is what lets eight read-modify-writes stay in flight.
  const __m256d count_one = _mm256_set_pd(0.0, 1.0, 0.0, 0.0);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const size_t r0 = idx[i], r1 = idx[i + 1], r2 = idx[i + 2],
                 r3 = idx[i + 3];
    const size_t r4 = idx[i + 4], r5 = idx[i + 5], r6 = idx[i + 6],
                 r7 = idx[i + 7];
    double* c0 = scratch + 0 * pw + kHistCellStride * (size_t)col[r0];
    double* c1 = scratch + 1 * pw + kHistCellStride * (size_t)col[r1];
    double* c2 = scratch + 2 * pw + kHistCellStride * (size_t)col[r2];
    double* c3 = scratch + 3 * pw + kHistCellStride * (size_t)col[r3];
    double* c4 = scratch + 0 * pw + kHistCellStride * (size_t)col[r4];
    double* c5 = scratch + 1 * pw + kHistCellStride * (size_t)col[r5];
    double* c6 = scratch + 2 * pw + kHistCellStride * (size_t)col[r6];
    double* c7 = scratch + 3 * pw + kHistCellStride * (size_t)col[r7];
    const __m256d u0 =
        _mm256_insertf128_pd(count_one, _mm_loadu_pd(gh + 2 * r0), 0);
    const __m256d u1 =
        _mm256_insertf128_pd(count_one, _mm_loadu_pd(gh + 2 * r1), 0);
    const __m256d u2 =
        _mm256_insertf128_pd(count_one, _mm_loadu_pd(gh + 2 * r2), 0);
    const __m256d u3 =
        _mm256_insertf128_pd(count_one, _mm_loadu_pd(gh + 2 * r3), 0);
    _mm256_storeu_pd(c0, _mm256_add_pd(_mm256_loadu_pd(c0), u0));
    _mm256_storeu_pd(c1, _mm256_add_pd(_mm256_loadu_pd(c1), u1));
    _mm256_storeu_pd(c2, _mm256_add_pd(_mm256_loadu_pd(c2), u2));
    _mm256_storeu_pd(c3, _mm256_add_pd(_mm256_loadu_pd(c3), u3));
    const __m256d u4 =
        _mm256_insertf128_pd(count_one, _mm_loadu_pd(gh + 2 * r4), 0);
    const __m256d u5 =
        _mm256_insertf128_pd(count_one, _mm_loadu_pd(gh + 2 * r5), 0);
    const __m256d u6 =
        _mm256_insertf128_pd(count_one, _mm_loadu_pd(gh + 2 * r6), 0);
    const __m256d u7 =
        _mm256_insertf128_pd(count_one, _mm_loadu_pd(gh + 2 * r7), 0);
    _mm256_storeu_pd(c4, _mm256_add_pd(_mm256_loadu_pd(c4), u4));
    _mm256_storeu_pd(c5, _mm256_add_pd(_mm256_loadu_pd(c5), u5));
    _mm256_storeu_pd(c6, _mm256_add_pd(_mm256_loadu_pd(c6), u6));
    _mm256_storeu_pd(c7, _mm256_add_pd(_mm256_loadu_pd(c7), u7));
  }
  for (; i < n; ++i) {
    const size_t row = idx[i];
    double* cell = scratch + (i & 3) * pw +
                   kHistCellStride * static_cast<size_t>(col[row]);
    cell[0] += gh[2 * row];
    cell[1] += gh[2 * row + 1];
    cell[2] += 1.0;
  }
  const double* l0 = scratch;
  const double* l1 = scratch + pw;
  const double* l2 = scratch + 2 * pw;
  const double* l3 = scratch + 3 * pw;
  for (size_t c = 0; c < pw; c += 4) {
    const __m256d s01 =
        _mm256_add_pd(_mm256_loadu_pd(l0 + c), _mm256_loadu_pd(l1 + c));
    const __m256d s012 = _mm256_add_pd(s01, _mm256_loadu_pd(l2 + c));
    _mm256_storeu_pd(region + c,
                     _mm256_add_pd(s012, _mm256_loadu_pd(l3 + c)));
  }
}

void SubSpanAvx2(double* a, const double* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        a + i, _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) a[i] -= b[i];
}

void SplitScanAvx2(const double* region, const uint64_t* mask,
                   size_t mask_words, size_t last, double n_rows,
                   double node_g, double node_h, double lambda,
                   double min_leaf, double min_child_weight,
                   SplitScanResult* out) {
  SplitScanResult local;
  const __m256d zero = _mm256_setzero_pd();
  const __m256d v_lam = _mm256_set1_pd(lambda);
  const __m256d v_ng = _mm256_set1_pd(node_g);
  const __m256d v_nh = _mm256_set1_pd(node_h);
  const __m256d v_nrows = _mm256_set1_pd(n_rows);
  const __m256d v_minleaf = _mm256_set1_pd(min_leaf);
  const __m256d v_mcw = _mm256_set1_pd(min_child_weight);
  const __m256d v_last = _mm256_set1_pd(static_cast<double>(last));
  // Uniform blocked walk — simd_kernels.cc defines the lane equations and
  // why the mask is only ever a prefilter (the result must not depend on
  // a derived histogram's superset mask). Everything is vector per 4-bin
  // block: the shift-scan prefix, the constraint gates, the candidate
  // rationals, and a screen against the running best. Only blocks the
  // screen flags (rare — the best changes O(log bins) times on typical
  // histograms) fall back to a scalar replay of the stored lane values,
  // in lane (= bin) order, so the strictly-greater fold — and the
  // lowest-bin tie-break — is exactly the reference's. The carries ride
  // in broadcast registers across the whole scan.
  __m256d cg = zero;
  __m256d ch = zero;
  __m256d cn = zero;
  __m256d v_bnum = _mm256_set1_pd(local.num);
  __m256d v_bden = _mm256_set1_pd(local.den);
  for (size_t w = 0; w < mask_words; ++w) {
    const uint64_t bits = mask[w];
    if (bits == 0) continue;
    const size_t base = w * 64;
    if (base >= last) break;
    for (size_t s = 0; s < 64; s += 4) {
      if (((bits >> s) & uint64_t{0xF}) == 0) continue;
      const size_t blk = base + s;
      if (blk >= last) break;
      const double* p = region + kHistCellStride * blk;
      const __m256d q0 = _mm256_loadu_pd(p);
      const __m256d q1 = _mm256_loadu_pd(p + kHistCellStride);
      const __m256d q2 = _mm256_loadu_pd(p + 2 * kHistCellStride);
      const __m256d q3 = _mm256_loadu_pd(p + 3 * kHistCellStride);
      const __m256d t02 = _mm256_unpacklo_pd(q0, q1);
      const __m256d t13 = _mm256_unpackhi_pd(q0, q1);
      const __m256d u02 = _mm256_unpacklo_pd(q2, q3);
      const __m256d u13 = _mm256_unpackhi_pd(q2, q3);
      const __m256d gv = _mm256_permute2f128_pd(t02, u02, 0x20);
      const __m256d hv = _mm256_permute2f128_pd(t13, u13, 0x20);
      const __m256d nv = _mm256_permute2f128_pd(t02, u02, 0x31);
      // Gate-zeroed lanes (bin >= last, or empty bin) neither enter the
      // prefix nor become candidates. An all-gated block is skipped
      // whole — the defined semantics, matched by the reference, so a
      // -0.0 carry is never flushed through +0.0 adds. The loads above
      // may run past `last` (the pool rows carry one block of pad for
      // the final feature); those lanes are cut here.
      __m256d occ = _mm256_cmp_pd(nv, zero, _CMP_NEQ_OQ);
      if (blk + 4 > last) {
        const __m256d idxv = _mm256_set_pd(
            static_cast<double>(blk + 3), static_cast<double>(blk + 2),
            static_cast<double>(blk + 1), static_cast<double>(blk));
        occ = _mm256_and_pd(occ, _mm256_cmp_pd(idxv, v_last, _CMP_LT_OQ));
      }
      if (_mm256_movemask_pd(occ) == 0) continue;
      const __m256d xg = _mm256_and_pd(gv, occ);
      const __m256d xh = _mm256_and_pd(hv, occ);
      const __m256d xn = _mm256_and_pd(nv, occ);
      // Two shifted adds + carry, with pass-through lanes blended (not
      // added to zero) so every lane is byte-for-byte the reference's.
      const auto prefix4 = [](__m256d x, __m256d carry) {
        __m256d y = _mm256_add_pd(
            x, _mm256_permute4x64_pd(x, _MM_SHUFFLE(2, 1, 0, 0)));
        y = _mm256_blend_pd(y, x, 0x1);
        __m256d z = _mm256_add_pd(y, _mm256_permute2f128_pd(y, y, 0x08));
        z = _mm256_blend_pd(z, y, 0x3);
        return _mm256_add_pd(z, carry);
      };
      const __m256d pg = prefix4(xg, cg);
      const __m256d ph = prefix4(xh, ch);
      const __m256d pn = prefix4(xn, cn);
      cg = _mm256_permute4x64_pd(pg, _MM_SHUFFLE(3, 3, 3, 3));
      ch = _mm256_permute4x64_pd(ph, _MM_SHUFFLE(3, 3, 3, 3));
      cn = _mm256_permute4x64_pd(pn, _MM_SHUFFLE(3, 3, 3, 3));
      // Gates as NOT-LESS-THAN (the exact negation of the reference's
      // early-out `<`, including its NaN behaviour).
      const __m256d nrv = _mm256_sub_pd(v_nrows, pn);
      const __m256d hrv = _mm256_sub_pd(v_nh, ph);
      __m256d valid =
          _mm256_and_pd(occ, _mm256_cmp_pd(pn, v_minleaf, _CMP_NLT_UQ));
      valid = _mm256_and_pd(valid, _mm256_cmp_pd(nrv, v_minleaf, _CMP_NLT_UQ));
      valid = _mm256_and_pd(valid, _mm256_cmp_pd(ph, v_mcw, _CMP_NLT_UQ));
      valid = _mm256_and_pd(valid, _mm256_cmp_pd(hrv, v_mcw, _CMP_NLT_UQ));
      const __m256d grv = _mm256_sub_pd(v_ng, pg);
      const __m256d blv = _mm256_add_pd(ph, v_lam);
      const __m256d brv = _mm256_add_pd(hrv, v_lam);
      const __m256d numv =
          _mm256_add_pd(_mm256_mul_pd(_mm256_mul_pd(pg, pg), brv),
                        _mm256_mul_pd(_mm256_mul_pd(grv, grv), blv));
      const __m256d denv = _mm256_mul_pd(blv, brv);
      // Screen: does any valid lane beat the block-start best? If not,
      // the reference fold leaves the best untouched across this block
      // (the best only improves, so a lane that cannot beat the start
      // best cannot beat a later one) and the block is done.
      const __m256d beat = _mm256_and_pd(
          valid, _mm256_cmp_pd(_mm256_mul_pd(numv, v_bden),
                               _mm256_mul_pd(v_bnum, denv), _CMP_GT_OQ));
      const int hit = _mm256_movemask_pd(beat);
      if (hit == 0) continue;
      const int vmask = _mm256_movemask_pd(valid);
      alignas(32) double ga[4], ha[4], na[4], nu[4], de[4];
      _mm256_store_pd(ga, pg);
      _mm256_store_pd(ha, ph);
      _mm256_store_pd(na, pn);
      _mm256_store_pd(nu, numv);
      _mm256_store_pd(de, denv);
      for (int l = 0; l < 4; ++l) {
        if (((vmask >> l) & 1) == 0) continue;
        if (nu[l] * local.den > local.num * de[l]) {
          local.num = nu[l];
          local.den = de[l];
          local.bin = static_cast<int32_t>(blk + static_cast<size_t>(l));
          local.left_g = ga[l];
          local.left_h = ha[l];
        }
      }
      v_bnum = _mm256_set1_pd(local.num);
      v_bden = _mm256_set1_pd(local.den);
    }
  }
  *out = local;
}

void LowerBoundU8Avx2(const double* edges, size_t ne, const double* values,
                      size_t n, uint8_t* out) {
  // Four searches in flight. The halving sequence depends only on ne, so
  // all lanes probe the same `half` each step and the per-lane base
  // offsets advance by a masked add — the same comparisons, in the same
  // order, as the scalar branch-free loop. _CMP_LT_OQ is the ordered `<`:
  // NaN compares false everywhere (bin 0), +inf lands past the last edge.
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    __m256i base = _mm256_setzero_si256();
    size_t len = ne;
    while (len > 1) {
      const size_t half = len / 2;
      const __m256i probe = _mm256_add_epi64(
          base, _mm256_set1_epi64x(static_cast<long long>(half - 1)));
      const __m256d e = _mm256_i64gather_pd(edges, probe, 8);
      const __m256d lt = _mm256_cmp_pd(e, v, _CMP_LT_OQ);
      base = _mm256_add_epi64(
          base, _mm256_and_si256(_mm256_castpd_si256(lt),
                                 _mm256_set1_epi64x(
                                     static_cast<long long>(half))));
      len -= half;
    }
    const __m256d e0 = _mm256_i64gather_pd(edges, base, 8);
    const __m256i inc =
        _mm256_and_si256(_mm256_castpd_si256(_mm256_cmp_pd(e0, v, _CMP_LT_OQ)),
                         _mm256_set1_epi64x(1));
    alignas(32) long long lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                       _mm256_add_epi64(base, inc));
    out[i + 0] = static_cast<uint8_t>(lanes[0]);
    out[i + 1] = static_cast<uint8_t>(lanes[1]);
    out[i + 2] = static_cast<uint8_t>(lanes[2]);
    out[i + 3] = static_cast<uint8_t>(lanes[3]);
  }
  if (i < n) LowerBoundU8Scalar(edges, ne, values + i, n - i, out + i);
}

void ForestAccumulateAvx2(const int32_t* feature, const int32_t* fidx,
                          const double* threshold, const int32_t* left,
                          const int32_t* right, const double* values,
                          size_t value_stride, size_t k, int32_t root,
                          int depth, const double* block, size_t block_stride,
                          size_t n, double* out, size_t out_stride) {
  // Two regimes by tree level, both exact:
  //
  // Levels 0-2 are specialized: level L has at most 2^L distinct nodes
  // (a leaf above level L appears as its own children — the self-loop
  // keeps each level's candidate set closed), so the candidates'
  // features, thresholds, and children broadcast into registers once per
  // call, and a group step is contiguous per-candidate column loads
  // picked by node-id equality blends — no gathers, and the top of the
  // tree is where every row's path concentrates.
  //
  // From level 3 down, rows descend four to a lane group, and four
  // groups (16 rows) run interleaved: one group's step chain is
  // gather-latency-bound (node -> gather feature -> gather x -> blend ->
  // node), so the other three groups' independent chains fill the
  // pipeline while it waits. Rows that reach their leaf early self-loop
  // there (left == right == node, the FlatForest invariant), reading the
  // leaf's guarded feature slot (max(feature, 0)) and threshold — loads
  // that are in-bounds and whose compare result is discarded by the
  // self-loop blend. A group whose four gathered features are all
  // negative (all lanes at leaves — the common case well before `depth`
  // on unbalanced leaf-wise trees) stops issuing steps.
  //
  // The final leaf, and the single add of its value, match the
  // early-exit scalar walk exactly; the x <= threshold compares are the
  // same exact compares, so the bits match any other walking strategy.
  const int* f_p = reinterpret_cast<const int*>(feature);
  const int* l_p = reinterpret_cast<const int*>(left);
  const int* r_p = reinterpret_cast<const int*>(right);
  const __m256i pack_even = _mm256_set_epi32(7, 5, 3, 1, 6, 4, 2, 0);
  const __m128i bs = _mm_set1_epi32(static_cast<int>(block_stride));
  const __m128i zero = _mm_setzero_si128();
  // One lockstep step for a 4-row group; returns true once every lane is
  // at a leaf (feature == -1 — all gathered sign bits set).
  const auto step4 = [&](__m128i& node, __m128i roff) {
    const __m128i f = _mm_i32gather_epi32(f_p, node, 4);
    if (_mm_movemask_ps(_mm_castsi128_ps(f)) == 0xF) return true;
    const __m128i fi = _mm_max_epi32(f, zero);  // guarded feature slot
    const __m256d thv = _mm256_i32gather_pd(threshold, node, 8);
    const __m128i vidx = _mm_add_epi32(_mm_mullo_epi32(fi, bs), roff);
    const __m256d xv = _mm256_i32gather_pd(block, vidx, 8);
    const __m256d le = _mm256_cmp_pd(xv, thv, _CMP_LE_OQ);
    const __m128i lv = _mm_i32gather_epi32(l_p, node, 4);
    const __m128i rv = _mm_i32gather_epi32(r_p, node, 4);
    // Pack the 4x64-bit compare mask down to 4x32-bit lanes, then route
    // each lane left or right.
    const __m128i lem = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
        _mm256_castpd_si256(le), pack_even));
    node = _mm_blendv_epi8(rv, lv, lem);
    return false;
  };
  const auto add4 = [&](__m128i node, size_t row) {
    alignas(16) int32_t leaf[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(leaf), node);
    out[(row + 0) * out_stride] +=
        values[static_cast<size_t>(leaf[0]) * value_stride + k];
    out[(row + 1) * out_stride] +=
        values[static_cast<size_t>(leaf[1]) * value_stride + k];
    out[(row + 2) * out_stride] +=
        values[static_cast<size_t>(leaf[2]) * value_stride + k];
    out[(row + 3) * out_stride] +=
        values[static_cast<size_t>(leaf[3]) * value_stride + k];
  };
  const auto row_offsets = [](size_t row) {
    return _mm_set_epi32(static_cast<int>(row) + 3, static_cast<int>(row) + 2,
                         static_cast<int>(row) + 1, static_cast<int>(row));
  };
  const auto pack_le = [&](__m256d le) {
    return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
        _mm256_castpd_si256(le), pack_even));
  };
  // Specialized-level candidate data (levels 0-2; leaves self-close).
  const size_t rt = static_cast<size_t>(root);
  const int32_t c1[2] = {left[rt], right[rt]};
  const int32_t c2[4] = {left[static_cast<size_t>(c1[0])],
                         right[static_cast<size_t>(c1[0])],
                         left[static_cast<size_t>(c1[1])],
                         right[static_cast<size_t>(c1[1])]};
  const double* col0 = block + static_cast<size_t>(fidx[rt]) * block_stride;
  const __m256d thr0 = _mm256_set1_pd(threshold[rt]);
  const __m128i l0v = _mm_set1_epi32(c1[0]);
  const __m128i r0v = _mm_set1_epi32(c1[1]);
  const double* col1a =
      block + static_cast<size_t>(fidx[static_cast<size_t>(c1[0])]) *
                  block_stride;
  const double* col1b =
      block + static_cast<size_t>(fidx[static_cast<size_t>(c1[1])]) *
                  block_stride;
  const __m256d thr1a = _mm256_set1_pd(threshold[static_cast<size_t>(c1[0])]);
  const __m256d thr1b = _mm256_set1_pd(threshold[static_cast<size_t>(c1[1])]);
  const __m128i l1av = _mm_set1_epi32(c2[0]);
  const __m128i r1av = _mm_set1_epi32(c2[1]);
  const __m128i l1bv = _mm_set1_epi32(c2[2]);
  const __m128i r1bv = _mm_set1_epi32(c2[3]);
  const double* col2[4];
  __m256d thr2[4];
  __m128i id2[3], l2v[4], r2v[4];
  for (int j = 0; j < 4; ++j) {
    const size_t c = static_cast<size_t>(c2[j]);
    col2[j] = block + static_cast<size_t>(fidx[c]) * block_stride;
    thr2[j] = _mm256_set1_pd(threshold[c]);
    l2v[j] = _mm_set1_epi32(left[c]);
    r2v[j] = _mm_set1_epi32(right[c]);
    if (j < 3) id2[j] = _mm_set1_epi32(c2[j]);
  }
  // Level 0: one candidate — broadcast compare, no masks at all.
  const auto step0 = [&](size_t row) {
    const __m128i lem = pack_le(
        _mm256_cmp_pd(_mm256_loadu_pd(col0 + row), thr0, _CMP_LE_OQ));
    return _mm_blendv_epi8(r0v, l0v, lem);
  };
  // Level 1: two candidates, picked per lane by node-id equality.
  const auto step1 = [&](__m128i node, size_t row) {
    const __m128i m = _mm_cmpeq_epi32(node, l0v);
    const __m256d md = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(m));
    const __m256d xv = _mm256_blendv_pd(_mm256_loadu_pd(col1b + row),
                                        _mm256_loadu_pd(col1a + row), md);
    const __m256d thv = _mm256_blendv_pd(thr1b, thr1a, md);
    const __m128i lem = pack_le(_mm256_cmp_pd(xv, thv, _CMP_LE_OQ));
    const __m128i lv = _mm_blendv_epi8(l1bv, l1av, m);
    const __m128i rv = _mm_blendv_epi8(r1bv, r1av, m);
    return _mm_blendv_epi8(rv, lv, lem);
  };
  // Level 2: four candidates; duplicate ids (leaves above) carry
  // identical data, so overlapping masks cannot disagree.
  const auto step2 = [&](__m128i node, size_t row) {
    const __m128i m0 = _mm_cmpeq_epi32(node, id2[0]);
    const __m128i m1 = _mm_cmpeq_epi32(node, id2[1]);
    const __m128i m2 = _mm_cmpeq_epi32(node, id2[2]);
    const __m256d d0 = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(m0));
    const __m256d d1 = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(m1));
    const __m256d d2 = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(m2));
    __m256d xv = _mm256_loadu_pd(col2[3] + row);
    xv = _mm256_blendv_pd(xv, _mm256_loadu_pd(col2[2] + row), d2);
    xv = _mm256_blendv_pd(xv, _mm256_loadu_pd(col2[1] + row), d1);
    xv = _mm256_blendv_pd(xv, _mm256_loadu_pd(col2[0] + row), d0);
    __m256d thv = thr2[3];
    thv = _mm256_blendv_pd(thv, thr2[2], d2);
    thv = _mm256_blendv_pd(thv, thr2[1], d1);
    thv = _mm256_blendv_pd(thv, thr2[0], d0);
    __m128i lv = l2v[3];
    lv = _mm_blendv_epi8(lv, l2v[2], m2);
    lv = _mm_blendv_epi8(lv, l2v[1], m1);
    lv = _mm_blendv_epi8(lv, l2v[0], m0);
    __m128i rv = r2v[3];
    rv = _mm_blendv_epi8(rv, r2v[2], m2);
    rv = _mm_blendv_epi8(rv, r2v[1], m1);
    rv = _mm_blendv_epi8(rv, r2v[0], m0);
    const __m128i lem = pack_le(_mm256_cmp_pd(xv, thv, _CMP_LE_OQ));
    return _mm_blendv_epi8(rv, lv, lem);
  };
  const auto spec = [&](size_t row) {
    __m128i node = _mm_set1_epi32(root);
    if (depth >= 1) node = step0(row);
    if (depth >= 2) node = step1(node, row);
    if (depth >= 3) node = step2(node, row);
    return node;
  };
  const int dspec = depth < 3 ? depth : 3;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i n0 = spec(i), n1 = spec(i + 4), n2 = spec(i + 8),
            n3 = spec(i + 12);
    const __m128i r0 = row_offsets(i), r1 = row_offsets(i + 4),
                  r2 = row_offsets(i + 8), r3 = row_offsets(i + 12);
    bool f0 = false, f1 = false, f2 = false, f3 = false;
    for (int d = dspec; d < depth && !(f0 && f1 && f2 && f3); ++d) {
      if (!f0) f0 = step4(n0, r0);
      if (!f1) f1 = step4(n1, r1);
      if (!f2) f2 = step4(n2, r2);
      if (!f3) f3 = step4(n3, r3);
    }
    add4(n0, i);
    add4(n1, i + 4);
    add4(n2, i + 8);
    add4(n3, i + 12);
  }
  for (; i + 4 <= n; i += 4) {
    __m128i node = spec(i);
    const __m128i roff = row_offsets(i);
    for (int d = dspec; d < depth; ++d) {
      if (step4(node, roff)) break;
    }
    add4(node, i);
  }
  if (i < n) {
    // The row offset folds into the block base: rows j of (block + i)
    // are rows i + j of the original transposed block.
    ForestAccumulateScalar(feature, fidx, threshold, left, right, values,
                           value_stride, k, root, depth, block + i,
                           block_stride, n - i, out + i * out_stride,
                           out_stride);
  }
}

}  // namespace detail
}  // namespace ml
}  // namespace rvar
