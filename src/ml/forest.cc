#include "ml/forest.h"

#include <cmath>

#include "common/parallel.h"
#include "common/strings.h"

namespace rvar {
namespace ml {
namespace {

// Bootstrap sample of row indices.
std::vector<size_t> Bootstrap(size_t num_rows, double fraction, Rng* rng) {
  const size_t n = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(num_rows)));
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) {
    idx[i] = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(num_rows) - 1));
  }
  return idx;
}

// Normalizes accumulated importance so it sums to 1 (if any gain was seen).
void NormalizeImportance(std::vector<double>* imp) {
  double total = 0.0;
  for (double v : *imp) total += v;
  if (total > 0.0) {
    for (double& v : *imp) v /= total;
  }
}

Status CommonChecks(const Dataset& d, const ForestConfig& config) {
  RVAR_RETURN_NOT_OK(d.Validate());
  if (d.NumRows() == 0) {
    return Status::InvalidArgument("cannot fit forest on empty dataset");
  }
  if (config.num_trees <= 0) {
    return Status::InvalidArgument(
        StrCat("num_trees must be positive, got ", config.num_trees));
  }
  if (config.bootstrap_fraction <= 0.0 || config.bootstrap_fraction > 1.0) {
    return Status::InvalidArgument("bootstrap_fraction must be in (0,1]");
  }
  return Status::OK();
}

}  // namespace

RandomForestClassifier::RandomForestClassifier(ForestConfig config)
    : config_(config) {}

Status RandomForestClassifier::Fit(const Dataset& d) {
  RVAR_RETURN_NOT_OK(CommonChecks(d, config_));
  if (d.y.size() != d.NumRows()) {
    return Status::InvalidArgument("classification requires labels");
  }
  num_classes_ = d.NumClasses();
  if (num_classes_ < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }

  RVAR_ASSIGN_OR_RETURN(FeatureBinner binner,
                        FeatureBinner::Fit(d, config_.max_bins));
  RVAR_ASSIGN_OR_RETURN(BinnedDataset binned, BinnedDataset::Make(binner, d));

  TreeConfig tree_config = config_.tree;
  if (config_.max_features > 0) {
    tree_config.max_features = config_.max_features;
  } else if (config_.max_features == 0) {
    tree_config.max_features = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(d.NumFeatures()))));
  }

  // Every tree gets a pre-split child Rng drawn serially from the seed, so
  // its randomness is a pure function of (seed, tree index) — independent
  // of which thread trains it or in what order.
  Rng rng(config_.seed);
  const size_t num_trees = static_cast<size_t>(config_.num_trees);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) tree_rngs.push_back(rng.Split());

  std::vector<Tree> trained(num_trees);
  std::vector<std::vector<double>> gains(num_trees);
  std::vector<Status> tree_status(num_trees, Status::OK());
  ParallelFor(num_trees, /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      const std::vector<size_t> idx =
          Bootstrap(d.NumRows(), config_.bootstrap_fraction, &tree_rngs[t]);
      Result<Tree> tree =
          TrainClassificationTree(binned, d.y, num_classes_, idx,
                                  tree_config, &tree_rngs[t], &gains[t]);
      if (tree.ok()) {
        trained[t] = std::move(*tree);
      } else {
        tree_status[t] = tree.status();
      }
    }
  });
  for (const Status& st : tree_status) RVAR_RETURN_NOT_OK(st);

  trees_ = std::move(trained);
  flat_ = FlatForest();
  for (const Tree& tree : trees_) flat_.Add(tree);
  importance_.assign(d.NumFeatures(), 0.0);
  for (const std::vector<double>& gain : gains) {  // merge in tree order
    for (size_t f = 0; f < gain.size(); ++f) importance_[f] += gain[f];
  }
  NormalizeImportance(&importance_);
  return Status::OK();
}

std::vector<double> RandomForestClassifier::PredictProba(
    const std::vector<double>& row) const {
  RVAR_CHECK(!trees_.empty()) << "PredictProba before Fit";
  std::vector<double> proba(static_cast<size_t>(num_classes_), 0.0);
  // Accumulate leaf distributions over the flat layout in tree order —
  // the same additions in the same order as walking trees_, bit-identical.
  const double* x = row.data();
  for (size_t t = 0; t < flat_.num_trees(); ++t) {
    const double* leaf = flat_.Values(t, x);
    for (size_t k = 0; k < proba.size(); ++k) proba[k] += leaf[k];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& p : proba) p *= inv;
  return proba;
}

Result<RandomForestClassifier> RandomForestClassifier::Restore(
    const ForestConfig& config, int num_classes, std::vector<Tree> trees,
    std::vector<double> importance) {
  if (num_classes < 2) {
    return Status::InvalidArgument(
        StrCat("restore needs >= 2 classes, got ", num_classes));
  }
  if (trees.empty()) {
    return Status::InvalidArgument("restore holds no trees");
  }
  const int num_features = static_cast<int>(importance.size());
  for (double g : importance) {
    if (!std::isfinite(g) || g < 0.0) {
      return Status::InvalidArgument(
          "feature importance must be finite and >= 0");
    }
  }
  for (size_t t = 0; t < trees.size(); ++t) {
    Status st = ValidateTree(trees[t], num_features,
                             static_cast<size_t>(num_classes));
    if (!st.ok()) {
      return Status::InvalidArgument(StrCat("tree ", t, ": ", st.message()));
    }
  }
  RandomForestClassifier model(config);
  model.num_classes_ = num_classes;
  model.trees_ = std::move(trees);
  for (const Tree& tree : model.trees_) model.flat_.Add(tree);
  model.importance_ = std::move(importance);
  return model;
}

RandomForestRegressor::RandomForestRegressor(ForestConfig config)
    : config_(config) {}

Status RandomForestRegressor::Fit(const Dataset& d) {
  RVAR_RETURN_NOT_OK(CommonChecks(d, config_));
  if (d.target.size() != d.NumRows()) {
    return Status::InvalidArgument("regression requires targets");
  }

  RVAR_ASSIGN_OR_RETURN(FeatureBinner binner,
                        FeatureBinner::Fit(d, config_.max_bins));
  RVAR_ASSIGN_OR_RETURN(BinnedDataset binned, BinnedDataset::Make(binner, d));

  TreeConfig tree_config = config_.tree;
  if (config_.max_features > 0) {
    tree_config.max_features = config_.max_features;
  } else if (config_.max_features == 0) {
    tree_config.max_features =
        std::max(1, static_cast<int>(d.NumFeatures()) / 3);
  }

  // Same pre-split Rng scheme as the classifier: tree t's randomness is a
  // function of (seed, t) only, so parallel training stays deterministic.
  Rng rng(config_.seed);
  const size_t num_trees = static_cast<size_t>(config_.num_trees);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) tree_rngs.push_back(rng.Split());

  std::vector<Tree> trained(num_trees);
  std::vector<std::vector<double>> gains(num_trees);
  std::vector<Status> tree_status(num_trees, Status::OK());
  ParallelFor(num_trees, /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      const std::vector<size_t> idx =
          Bootstrap(d.NumRows(), config_.bootstrap_fraction, &tree_rngs[t]);
      Result<Tree> tree = TrainRegressionTree(binned, d.target, idx,
                                              tree_config, &tree_rngs[t],
                                              &gains[t]);
      if (tree.ok()) {
        trained[t] = std::move(*tree);
      } else {
        tree_status[t] = tree.status();
      }
    }
  });
  for (const Status& st : tree_status) RVAR_RETURN_NOT_OK(st);

  trees_ = std::move(trained);
  flat_ = FlatForest();
  for (const Tree& tree : trees_) flat_.Add(tree);
  importance_.assign(d.NumFeatures(), 0.0);
  for (const std::vector<double>& gain : gains) {  // merge in tree order
    for (size_t f = 0; f < gain.size(); ++f) importance_[f] += gain[f];
  }
  NormalizeImportance(&importance_);
  return Status::OK();
}

double RandomForestRegressor::Predict(const std::vector<double>& row) const {
  RVAR_CHECK(!trees_.empty()) << "Predict before Fit";
  double acc = 0.0;
  const double* x = row.data();
  for (size_t t = 0; t < flat_.num_trees(); ++t) {
    acc += flat_.PredictScalar(t, x);
  }
  return acc / static_cast<double>(trees_.size());
}

Result<RandomForestRegressor> RandomForestRegressor::Restore(
    const ForestConfig& config, std::vector<Tree> trees,
    std::vector<double> importance) {
  if (trees.empty()) {
    return Status::InvalidArgument("restore holds no trees");
  }
  const int num_features = static_cast<int>(importance.size());
  for (double g : importance) {
    if (!std::isfinite(g) || g < 0.0) {
      return Status::InvalidArgument(
          "feature importance must be finite and >= 0");
    }
  }
  for (size_t t = 0; t < trees.size(); ++t) {
    Status st = ValidateTree(trees[t], num_features, 1);
    if (!st.ok()) {
      return Status::InvalidArgument(StrCat("tree ", t, ": ", st.message()));
    }
  }
  RandomForestRegressor model(config);
  model.trees_ = std::move(trees);
  for (const Tree& tree : model.trees_) model.flat_.Add(tree);
  model.importance_ = std::move(importance);
  return model;
}

}  // namespace ml
}  // namespace rvar
