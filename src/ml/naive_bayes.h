// Copyright 2026 The rvar Authors.
//
// Gaussian naive Bayes — one of the base classifiers combined by the
// soft-voting ensemble swept in Section 5.2 of the paper.

#ifndef RVAR_ML_NAIVE_BAYES_H_
#define RVAR_ML_NAIVE_BAYES_H_

#include <vector>

#include "ml/model.h"

namespace rvar {
namespace ml {

/// \brief GaussianNB: per-class, per-feature normal likelihoods with a
/// variance floor for numerical stability (scikit-learn's var_smoothing).
class GaussianNaiveBayes : public Classifier {
 public:
  /// \param var_smoothing fraction of the largest feature variance added to
  ///        all variances.
  explicit GaussianNaiveBayes(double var_smoothing = 1e-9);

  Status Fit(const Dataset& d) override;
  std::vector<double> PredictProba(
      const std::vector<double>& row) const override;
  int num_classes() const override { return num_classes_; }

 private:
  double var_smoothing_;
  int num_classes_ = 0;
  std::vector<double> log_prior_;               // [class]
  std::vector<std::vector<double>> mean_;       // [class][feature]
  std::vector<std::vector<double>> variance_;   // [class][feature]
};

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_NAIVE_BAYES_H_
