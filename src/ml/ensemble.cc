#include "ml/ensemble.h"

#include "common/strings.h"

namespace rvar {
namespace ml {

void VotingClassifier::AddModel(std::unique_ptr<Classifier> model,
                                double weight) {
  RVAR_CHECK(model != nullptr);
  RVAR_CHECK_GT(weight, 0.0);
  models_.push_back(std::move(model));
  weights_.push_back(weight);
}

Status VotingClassifier::Fit(const Dataset& d) {
  if (models_.empty()) {
    return Status::FailedPrecondition("VotingClassifier has no base models");
  }
  for (size_t m = 0; m < models_.size(); ++m) {
    Status st = models_[m]->Fit(d);
    if (!st.ok()) {
      return Status(st.code(),
                    StrCat("base model ", m, ": ", st.message()));
    }
  }
  num_classes_ = models_[0]->num_classes();
  for (const auto& m : models_) {
    if (m->num_classes() != num_classes_) {
      return Status::Internal("base models disagree on class count");
    }
  }
  return Status::OK();
}

std::vector<double> VotingClassifier::PredictProba(
    const std::vector<double>& row) const {
  RVAR_CHECK(!models_.empty() && num_classes_ > 0)
      << "PredictProba before Fit";
  std::vector<double> proba(static_cast<size_t>(num_classes_), 0.0);
  double total_weight = 0.0;
  for (size_t m = 0; m < models_.size(); ++m) {
    const std::vector<double> p = models_[m]->PredictProba(row);
    for (size_t k = 0; k < proba.size(); ++k) {
      proba[k] += weights_[m] * p[k];
    }
    total_weight += weights_[m];
  }
  for (double& p : proba) p /= total_weight;
  return proba;
}

}  // namespace ml
}  // namespace rvar
