// Copyright 2026 The rvar Authors.
//
// Abstract model interfaces shared by the classifiers (random forest, GBDT,
// naive Bayes, voting ensemble) and regressors, so the prediction pipeline
// and the soft-voting ensemble can treat them uniformly.

#ifndef RVAR_ML_MODEL_H_
#define RVAR_ML_MODEL_H_

#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "ml/dataset.h"

namespace rvar {
namespace ml {

/// \brief A multiclass probabilistic classifier.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `d` (labels in d.y). May be called once per instance.
  virtual Status Fit(const Dataset& d) = 0;

  /// Class-probability vector for one feature row; sums to 1.
  virtual std::vector<double> PredictProba(
      const std::vector<double>& row) const = 0;

  /// Number of classes the model was fit with.
  virtual int num_classes() const = 0;

  /// Most probable class for `row`.
  int Predict(const std::vector<double>& row) const {
    const std::vector<double> p = PredictProba(row);
    RVAR_CHECK(!p.empty());
    int best = 0;
    for (size_t k = 1; k < p.size(); ++k) {
      if (p[k] > p[static_cast<size_t>(best)]) best = static_cast<int>(k);
    }
    return best;
  }

  /// Predicted class per row of `d`.
  std::vector<int> PredictAll(const Dataset& d) const {
    std::vector<int> out;
    out.reserve(d.NumRows());
    for (const auto& row : d.x) out.push_back(Predict(row));
    return out;
  }
};

/// \brief A scalar regressor.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on `d` (targets in d.target).
  virtual Status Fit(const Dataset& d) = 0;

  /// Point prediction for one feature row.
  virtual double Predict(const std::vector<double>& row) const = 0;

  /// Point prediction per row of `d`.
  std::vector<double> PredictAll(const Dataset& d) const {
    std::vector<double> out;
    out.reserve(d.NumRows());
    for (const auto& row : d.x) out.push_back(Predict(row));
    return out;
  }
};

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_MODEL_H_
