#include "ml/gbdt.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "ml/simd_kernels.h"

namespace rvar {
namespace ml {
namespace {

constexpr size_t kNoHist = static_cast<size_t>(-1);

// A grown-but-unexpanded leaf with its best split precomputed.
struct LeafCandidate {
  int node_id;
  size_t begin, end;  // span in the index array
  int depth;
  double gain;
  int feature;
  int bin;
  // Node grad/hess totals, threaded down from the parent's split scan so
  // they are never re-summed over rows.
  double node_g, node_h;
  // Prefix sums at the winning bin == the left child's totals.
  double left_g, left_h;
  // Handle of this node's cached histogram in the builder's pool; kNoHist
  // when the node was never eligible for a split search.
  size_t hist;

  bool operator<(const LeafCandidate& other) const {
    return gain < other.gain;  // max-heap on gain
  }
};

// Trains one Newton tree on (grad, hess) with leaf-wise growth.
// Leaf values are -G/(H+lambda) * learning_rate.
//
// Split finding works on cached per-node histograms (DESIGN.md §10): each
// heap candidate owns a pooled buffer holding, for every feature, per-bin
// (grad, hess, count) sums in one contiguous allocation. When a node is
// expanded, only the smaller child's histogram is accumulated from rows;
// the larger child's is derived by elementwise subtraction from the
// parent's buffer (which it then reuses) — about half the histogram work
// of building both children. Which child is built directly depends only on
// the partition sizes, and every row scan walks idx_ in index order, so
// the result is bit-identical at any thread count.

// Reusable cross-tree training workspace: the histogram pool (buffers,
// occupancy masks, free list) and the interleaved (grad, hess) pairs.
// One Fit trains num_rounds * K trees over the same binned layout, so the
// multi-hundred-KB pool buffers allocated (and zeroed) for the first tree
// are recycled by every later one instead of being reallocated per tree —
// which would otherwise dominate single-thread training with page-fault
// memsets. The pool invariant (cells outside a buffer's mask are exactly
// zero) survives Release/Acquire across trees because a buffer keeps its
// last occupant's mask until the next occupant clears through it.
struct GbdtWorkspace {
  std::vector<std::vector<double>> pool;
  std::vector<std::vector<uint64_t>> pool_mask;
  std::vector<size_t> free_list;
  std::vector<double> gh;
};

class GbdtTreeBuilder {
 public:
  struct BuiltTree {
    Tree tree;
    // split_bin[node] is the bin index behind tree.nodes[node].threshold;
    // meaningful only where feature >= 0. Lets training-time score updates
    // traverse by uint8 bin comparisons over BinnedDataset columns, which
    // route identically to threshold comparisons on the raw doubles
    // (dataset.h: Bin(f, v) <= b exactly when v <= UpperEdge(f, b)).
    std::vector<uint8_t> split_bin;
  };

  GbdtTreeBuilder(const BinnedDataset& data, const GbdtConfig& config,
                  const std::vector<double>& grad,
                  const std::vector<double>& hess,
                  const std::vector<uint8_t>& feature_mask,
                  std::vector<double>* importance, GbdtWorkspace* ws)
      : data_(data),
        config_(config),
        grad_(grad),
        hess_(hess),
        feature_mask_(feature_mask),
        importance_(importance),
        ws_(*ws) {
    // Histogram layout: feature f's bins start at kHistCellStride *
    // offset_[f], with bin b's (grad, hess, count, pad) quad interleaved
    // at kHistCellStride * b — one cache line per sample update, and a
    // cell is exactly one 256-bit lane so the dispatched accumulation
    // kernel updates it with a single vector add (simd_kernels.h).
    const size_t nf = data_.columns.size();
    offset_.resize(nf);
    size_t total = 0;
    size_t max_bins = 0;
    for (size_t f = 0; f < nf; ++f) {
      offset_[f] = total;
      const size_t nb = static_cast<size_t>(data_.binner->NumBins(f));
      total += nb;
      max_bins = std::max(max_bins, nb);
    }
    total_bins_ = total;
    max_bins_ = max_bins;
    mask_stride_ = (max_bins + 63) / 64;
    // Interleaved (grad, hess) pairs: the accumulation kernels read one
    // sample's pair as a single 128-bit load. Resize is a no-op after the
    // workspace's first tree; every entry is overwritten.
    ws_.gh.resize(2 * grad.size());
    for (size_t r = 0; r < grad.size(); ++r) {
      ws_.gh[2 * r] = grad[r];
      ws_.gh[2 * r + 1] = hess[r];
    }
  }

  BuiltTree Build(std::vector<size_t> sample_idx) {
    idx_ = std::move(sample_idx);
    tree_.nodes.clear();
    split_bin_.clear();
    // A tree with L leaves holds 2L-1 nodes; reserving up front keeps
    // NewLeaf from reallocating the node vector mid-growth.
    const size_t max_nodes =
        2 * static_cast<size_t>(std::max(config_.max_leaves, 1)) - 1;
    tree_.nodes.reserve(max_nodes);
    split_bin_.reserve(max_nodes);

    std::priority_queue<LeafCandidate> heap;
    const auto [root_g, root_h] = SpanTotals(0, idx_.size());
    const int root = NewLeaf(root_g, root_h);
    LeafCandidate root_cand{root,   0,      idx_.size(), 0,   0.0, -1, -1,
                            root_g, root_h, 0.0,         0.0, kNoHist};
    if (SpanCanSplit(idx_.size())) {
      root_cand.hist = AcquireHist();
      BuildHistogram(0, idx_.size(), root_cand.hist);
      FindBestSplit(&root_cand);
    }
    PushOrRelease(&heap, root_cand);

    int num_leaves = 1;
    while (!heap.empty() && num_leaves < config_.max_leaves) {
      LeafCandidate cand = heap.top();
      heap.pop();
      if (cand.gain < config_.min_gain) break;

      // Partition the span on the chosen (feature, bin).
      const std::vector<uint8_t>& col =
          data_.columns[static_cast<size_t>(cand.feature)];
      auto mid_it = std::partition(
          idx_.begin() + static_cast<ptrdiff_t>(cand.begin),
          idx_.begin() + static_cast<ptrdiff_t>(cand.end),
          [&](size_t row) { return col[row] <= static_cast<uint8_t>(cand.bin); });
      const size_t mid = static_cast<size_t>(mid_it - idx_.begin());
      if (mid == cand.begin || mid == cand.end) {  // degenerate
        ReleaseHist(cand.hist);
        continue;
      }

      if (importance_ != nullptr) {
        (*importance_)[static_cast<size_t>(cand.feature)] += cand.gain;
      }

      const size_t node_id = static_cast<size_t>(cand.node_id);
      tree_.nodes[node_id].feature = cand.feature;
      tree_.nodes[node_id].threshold = data_.binner->UpperEdge(
          static_cast<size_t>(cand.feature), cand.bin);
      split_bin_[node_id] = static_cast<uint8_t>(cand.bin);
      const double right_g = cand.node_g - cand.left_g;
      const double right_h = cand.node_h - cand.left_h;
      const int left = NewLeaf(cand.left_g, cand.left_h);
      const int right = NewLeaf(right_g, right_h);
      tree_.nodes[node_id].left = left;
      tree_.nodes[node_id].right = right;
      ++num_leaves;

      LeafCandidate lc{left,        cand.begin,  mid, cand.depth + 1,
                       0.0,         -1,          -1,  cand.left_g,
                       cand.left_h, 0.0,         0.0, kNoHist};
      LeafCandidate rc{right,   mid,     cand.end, cand.depth + 1,
                       0.0,     -1,      -1,       right_g,
                       right_h, 0.0,     0.0,      kNoHist};
      const bool deep_ok = cand.depth + 1 < config_.max_depth;
      const bool l_ok = deep_ok && SpanCanSplit(mid - cand.begin);
      const bool r_ok = deep_ok && SpanCanSplit(cand.end - mid);
      if (l_ok && r_ok) {
        // Build the smaller child's histogram from rows; the sibling's is
        // the parent's minus it, computed in place in the parent's buffer
        // (ties build the left child — a pure function of the partition).
        LeafCandidate* small =
            (mid - cand.begin <= cand.end - mid) ? &lc : &rc;
        LeafCandidate* large = (small == &lc) ? &rc : &lc;
        small->hist = AcquireHist();
        BuildHistogram(small->begin, small->end, small->hist);
        large->hist = cand.hist;
        if (config_.use_hist_subtraction) {
          SubtractHistogram(large->hist, small->hist);
        } else {
          BuildHistogram(large->begin, large->end, large->hist);
        }
        FindBestSplit(&lc);
        FindBestSplit(&rc);
      } else if (l_ok || r_ok) {
        // Only one child can ever split; build it directly into the
        // parent's buffer.
        LeafCandidate* only = l_ok ? &lc : &rc;
        only->hist = cand.hist;
        BuildHistogram(only->begin, only->end, only->hist);
        FindBestSplit(only);
      } else {
        ReleaseHist(cand.hist);
      }
      PushOrRelease(&heap, lc);
      PushOrRelease(&heap, rc);
    }
    // Candidates still queued when growth stops (leaf cap, gain cutoff)
    // hold pooled buffers; return them so the next tree's builder finds
    // the whole pool on the shared workspace's free list.
    while (!heap.empty()) {
      ReleaseHist(heap.top().hist);
      heap.pop();
    }
    BuiltTree out;
    out.tree = std::move(tree_);
    out.split_bin = std::move(split_bin_);
    return out;
  }

 private:
  bool SpanCanSplit(size_t n) const {
    return n >= 2 * static_cast<size_t>(config_.min_samples_leaf);
  }

  // Appends a leaf with the given grad/hess totals; returns its id.
  int NewLeaf(double g, double h) {
    TreeNode node;
    node.value = {-g / (h + config_.lambda_l2) * config_.learning_rate};
    node.cover = h;
    tree_.nodes.push_back(std::move(node));
    split_bin_.push_back(0);
    return static_cast<int>(tree_.nodes.size()) - 1;
  }

  // Pushes a searchable candidate; otherwise returns its buffer (if any)
  // to the pool.
  void PushOrRelease(std::priority_queue<LeafCandidate>* heap,
                     const LeafCandidate& cand) {
    if (cand.feature >= 0) {
      heap->push(cand);
    } else {
      ReleaseHist(cand.hist);
    }
  }

  // Deterministic chunked grad/hess totals over idx_[begin, end); used
  // once per tree for the root (children inherit theirs from the parent's
  // winning-bin prefix sums).
  std::pair<double, double> SpanTotals(size_t begin, size_t end) const {
    struct GH {
      double g = 0.0, h = 0.0;
    };
    const GH t = ParallelReduce<GH>(
        end - begin, /*grain=*/8192, GH{},
        [&](size_t b, size_t e) {
          GH local;
          for (size_t i = begin + b; i < begin + e; ++i) {
            local.g += grad_[idx_[i]];
            local.h += hess_[idx_[i]];
          }
          return local;
        },
        [](GH acc, GH part) {
          acc.g += part.g;
          acc.h += part.h;
          return acc;
        });
    return {t.g, t.h};
  }

  size_t AcquireHist() {
    if (!ws_.free_list.empty()) {
      const size_t h = ws_.free_list.back();
      ws_.free_list.pop_back();
      return h;
    }
    // Fresh buffers are all-zero with an empty mask, which satisfies the
    // occupancy invariant (cells outside the mask are exactly zero). One
    // spare cell block pads the row so the split scan's 4-bin vector
    // loads may run up to three cells past the last feature's region;
    // the pad is never written and its lanes are gated out before use.
    ws_.pool.emplace_back(kHistCellStride * (total_bins_ + 4));
    ws_.pool_mask.emplace_back(data_.columns.size() * mask_stride_, 0);
    return ws_.pool.size() - 1;
  }

  void ReleaseHist(size_t h) {
    if (h != kNoHist) ws_.free_list.push_back(h);
  }

  // Fan-out policy: a pool dispatch costs tens of microseconds, so a chunk
  // must carry at least a few thousand row-updates (builds) or bin reads
  // (scans) to amortize it. Both cutoffs are pure functions of the node
  // size and the dataset shape — never the thread count — so chunking, and
  // with it every result, is identical at any parallelism level.
  static constexpr size_t kMinRowsPerBuildChunk = 4096;
  static constexpr size_t kMinBinsPerScanChunk = 16384;

  // Feature grain for histogram accumulation over `span_rows` rows: one
  // inline chunk for small nodes, otherwise chunks sized so each covers at
  // least kMinRowsPerBuildChunk rows' worth of updates.
  size_t BuildGrain(size_t span_rows) const {
    const size_t nf = data_.columns.size();
    const size_t chunks = std::min(nf, span_rows / kMinRowsPerBuildChunk);
    return chunks <= 1 ? nf : (nf + chunks - 1) / chunks;
  }

  // Feature grain for split scans, whose cost tracks the bin count, not
  // the node size; typical layouts (tens of features x 256 bins) are far
  // cheaper than a dispatch and run as one inline chunk.
  size_t ScanGrain() const {
    const size_t nf = data_.columns.size();
    const size_t chunks = std::min(nf, total_bins_ / kMinBinsPerScanChunk);
    return chunks <= 1 ? nf : (nf + chunks - 1) / chunks;
  }

  // Accumulates the (grad, hess, count) histogram of idx_[begin, end) into
  // pool buffer h. Features are independent, so the build fans out over
  // deterministic feature chunks (each feature's region is written by
  // exactly one chunk, so any grouping yields identical contents); within
  // a feature, the accumulation semantics are fixed per regime (below), so
  // the contents never depend on the thread count or the SIMD level.
  //
  // Every pool buffer carries a per-feature occupancy bitmask upholding
  // one invariant: cells outside the mask are exactly zero (pad cells are
  // zero everywhere). Recycled buffers are therefore cleared by walking
  // the previous occupant's set bits instead of zero-filling whole
  // regions, and downstream work (subtraction, split scans) touches only
  // occupied bins — the cost of a node scales with how many bins its rows
  // actually hit, not with the full bin layout.
  //
  // Two accumulation regimes, chosen purely by (node size, bin count):
  //  - Dense (rows >= 8 * nb): the dispatched lane-partial kernel
  //    (simd_kernels.h) overwrites the whole region — no clearing needed —
  //    and the mask is set full-range (a valid superset, nearly exact for
  //    dense nodes). The kernel's four-lane fixed-order reduction is the
  //    *defined* semantics; the scalar dispatch row implements the same
  //    lanes, so every level produces the same bits.
  //  - Sparse: the dispatched masked kernel accumulates sequentially in
  //    index order with exact per-sample mask bits — the same updates, in
  //    the same order, at every level.
  void BuildHistogram(size_t begin, size_t end, size_t h) {
    std::vector<double>& buf = ws_.pool[h];
    std::vector<uint64_t>& mask = ws_.pool_mask[h];
    const SimdKernels& kern = ActiveSimdKernels();
    ParallelFor(data_.columns.size(), BuildGrain(end - begin),
                [&](size_t fbegin, size_t fend) {
      // Lane scratch for the dense kernel, per chunk (chunks may run on
      // different threads); sized once for the widest feature.
      std::vector<double> scratch;
      for (size_t f = fbegin; f < fend; ++f) {
        const size_t nb = static_cast<size_t>(data_.binner->NumBins(f));
        double* region = buf.data() + kHistCellStride * offset_[f];
        uint64_t* m = mask.data() + f * mask_stride_;
        const bool active = feature_mask_[f] && nb >= 2;
        // The lane kernel pays a full scratch clear plus a full-region
        // reduce (8 * nb cells of traffic) regardless of node size, so it
        // must be amortized over well more rows than bins; below that the
        // masked sequential kernel touches only the cells the rows hit.
        if (active && end - begin >= 8 * nb) {
          // Dense node: nearly every bin gets hit, so a full-range mask
          // is as good as an exact one, the per-sample bit updates can be
          // skipped entirely, and the kernel's full-region overwrite
          // subsumes clearing the previous occupant (the old mask bits
          // for this feature all lie inside the overwritten range).
          if (scratch.size() < HistScratchDoubles(nb)) {
            scratch.resize(HistScratchDoubles(max_bins_));
          }
          kern.hist_accumulate(idx_.data() + begin, end - begin,
                               data_.columns[f].data(), ws_.gh.data(), nb,
                               region, scratch.data());
          for (size_t w = 0; w * 64 < nb; ++w) {
            const size_t bins_left = nb - w * 64;
            m[w] = bins_left >= 64 ? ~uint64_t{0}
                                   : (uint64_t{1} << bins_left) - 1;
          }
          continue;
        }
        // Clear the previous occupant's cells: sparse mask words walk
        // their set bits, dense words blast the whole 64-bin range with a
        // contiguous fill (cells outside the mask are already zero, so
        // overwriting them is exact).
        for (size_t w = 0; w < mask_stride_; ++w) {
          uint64_t bits = m[w];
          if (bits == 0) continue;
          if (std::popcount(bits) >= 16) {
            const size_t lo = w * 64;
            const size_t hi = std::min(nb, lo + 64);
            std::fill(region + kHistCellStride * lo,
                      region + kHistCellStride * hi, 0.0);
          } else {
            while (bits != 0) {
              const size_t b =
                  w * 64 + static_cast<size_t>(std::countr_zero(bits));
              bits &= bits - 1;
              double* cell = region + kHistCellStride * b;
              cell[0] = 0.0;
              cell[1] = 0.0;
              cell[2] = 0.0;
            }
          }
          m[w] = 0;
        }
        if (!active) continue;
        // Column-outer accumulation keeps the working set L1-resident:
        // one feature's ~4KB region plus the interleaved gh pairs. Each
        // sample's (g, h, n) update lands on one interleaved cache line.
        kern.hist_accumulate_masked(idx_.data() + begin, end - begin,
                                    data_.columns[f].data(), ws_.gh.data(),
                                    region, m);
      }
    });
  }

  // large -= small over the small child's occupied cells only — cells
  // outside its mask are exactly zero (the pool invariant), so skipping
  // them is not an approximation. The large buffer keeps the parent's
  // mask: the small child's rows are a subset of the parent's, so its
  // occupancy is covered, and the superset stays a valid mask for the
  // derived result. Counts are exact integers in double, so sample-count
  // split constraints are unaffected by the derivation; grad/hess pick up
  // O(1e-12) relative cancellation noise, which is deterministic (fixed
  // operand order).
  void SubtractHistogram(size_t large, size_t small) {
    std::vector<double>& l = ws_.pool[large];
    const std::vector<double>& s = ws_.pool[small];
    const std::vector<uint64_t>& sm = ws_.pool_mask[small];
    const SimdKernels& kern = ActiveSimdKernels();
    const size_t nf = data_.columns.size();
    for (size_t f = 0; f < nf; ++f) {
      double* lregion = l.data() + kHistCellStride * offset_[f];
      const double* sregion = s.data() + kHistCellStride * offset_[f];
      const uint64_t* m = sm.data() + f * mask_stride_;
      for (size_t w = 0; w < mask_stride_; ++w) {
        uint64_t bits = m[w];
        if (bits == ~uint64_t{0}) {
          // 64 consecutive occupied bins (the common case under the dense
          // build's full-range mask): one contiguous elementwise vector
          // subtract over the whole word's cells. Subtraction is
          // elementwise, so any lane width gives identical bits; pads
          // stay zero (0 - 0).
          kern.sub_span(lregion + kHistCellStride * w * 64,
                        sregion + kHistCellStride * w * 64,
                        kHistCellStride * 64);
          continue;
        }
        while (bits != 0) {
          const size_t b =
              w * 64 + static_cast<size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          double* lc = lregion + kHistCellStride * b;
          const double* sc = sregion + kHistCellStride * b;
          lc[0] -= sc[0];
          lc[1] -= sc[1];
          lc[2] -= sc[2];
        }
      }
    }
  }

  // XGBoost split gain: 1/2 [GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l)].
  double SplitGain(double gl, double hl, double gr, double hr) const {
    const double l = config_.lambda_l2;
    const double g = gl + gr, h = hl + hr;
    return 0.5 * (gl * gl / (hl + l) + gr * gr / (hr + l) - g * g / (h + l));
  }

  // Best split over a contiguous feature range. The maximized objective is
  // the variable part of the gain, score = GL^2/(HL+l) + GR^2/(HR+l), kept
  // as the exact rational num/den (den > 0):
  //   num = GL^2*(HR+l) + GR^2*(HL+l),   den = (HL+l)*(HR+l).
  // Candidates compare by cross-multiplication, which keeps the per-bin
  // loop division-free; the winner's true gain is derived once at the end.
  // Merges happen in chunk-index order (common/parallel.h), so the same
  // comparison sequence runs at every thread count and the lowest feature
  // index wins ties (strictly-greater replacement).
  struct SplitChoice {
    double num = -1.0, den = 1.0;  // sentinel: loses to any real candidate
    int feature = -1;
    int bin = -1;
    double left_g = 0.0, left_h = 0.0;
  };

  // Scans cand's cached histogram for the best split; requires cand->hist.
  void FindBestSplit(LeafCandidate* cand) {
    cand->feature = -1;
    cand->gain = -1.0;
    const size_t n = cand->end - cand->begin;
    const std::vector<double>& buf = ws_.pool[cand->hist];
    const double min_leaf = static_cast<double>(config_.min_samples_leaf);
    // The parent contribution to the gain is constant across the node; it
    // only enters the winner's final gain, never the per-bin comparison.
    const double lambda = config_.lambda_l2;
    const double parent_term =
        cand->node_g * cand->node_g / (cand->node_h + lambda);

    const SplitChoice best = ParallelReduce<SplitChoice>(
        data_.columns.size(), ScanGrain(), SplitChoice{},
        [&](size_t fbegin, size_t fend) {
          SplitChoice local;
          const SimdKernels& kern = ActiveSimdKernels();
          const std::vector<uint64_t>& mask = ws_.pool_mask[cand->hist];
          for (size_t f = fbegin; f < fend; ++f) {
            if (!feature_mask_[f]) continue;
            const int num_bins = data_.binner->NumBins(f);
            if (num_bins < 2) continue;
            const double* hist = buf.data() + kHistCellStride * offset_[f];
            const uint64_t* m = mask.data() + f * mask_stride_;
            // The per-feature scan is the dispatched split_scan kernel
            // (simd_kernels.h): it walks only the mask's set bits — only
            // occupied bins move the prefix sums or can win, since an
            // empty bin's gain ties the previous candidate's and the
            // strictly-greater comparison never picks a tie. A derived
            // (subtraction) histogram carries the parent's mask — a
            // superset — so bins the subtraction emptied still show up;
            // their exact-zero counts skip them, which also keeps ~1e-17
            // grad/hess cancellation residue out of the prefix sums. The
            // last bin is never a split point (`last` bound).
            SplitScanResult r;
            kern.split_scan(hist, m, mask_stride_,
                            static_cast<size_t>(num_bins) - 1,
                            static_cast<double>(n), cand->node_g,
                            cand->node_h, lambda, min_leaf,
                            config_.min_child_weight, &r);
            // Features fold left-to-right with the same strictly-greater
            // replacement the kernel applies per bin, so the lowest
            // feature (then lowest bin) wins ties and the fold runs the
            // same comparisons at every SIMD level and chunk grouping.
            if (r.bin >= 0 && r.num * local.den > local.num * r.den) {
              local.num = r.num;
              local.den = r.den;
              local.feature = static_cast<int>(f);
              local.bin = static_cast<int>(r.bin);
              local.left_g = r.left_g;
              local.left_h = r.left_h;
            }
          }
          return local;
        },
        // Chunks merge in feature order with strictly-greater replacement,
        // so the lowest feature index wins ties under any chunk grouping.
        [](SplitChoice acc, SplitChoice part) {
          return part.num * acc.den > acc.num * part.den ? part : acc;
        });
    cand->feature = best.feature;
    cand->bin = best.bin;
    cand->left_g = best.left_g;
    cand->left_h = best.left_h;
    if (best.feature >= 0) {
      // The winner's true gain, computed once from its prefix sums.
      const double gr = cand->node_g - best.left_g;
      const double hr = cand->node_h - best.left_h;
      cand->gain = 0.5 * (best.left_g * best.left_g / (best.left_h + lambda) +
                          gr * gr / (hr + lambda) - parent_term);
    }
  }

  const BinnedDataset& data_;
  const GbdtConfig& config_;
  const std::vector<double>& grad_;
  const std::vector<double>& hess_;
  const std::vector<uint8_t>& feature_mask_;
  std::vector<double>* importance_;
  std::vector<size_t> idx_;
  Tree tree_;
  std::vector<uint8_t> split_bin_;  // aligned with tree_.nodes
  std::vector<size_t> offset_;
  size_t total_bins_ = 0;
  size_t max_bins_ = 0;
  size_t mask_stride_ = 0;
  // Shared per-Fit scratch (gh pairs + histogram pool); see GbdtWorkspace.
  // Build() returns every pooled buffer to the free list before exiting,
  // so the next tree starts from a fully recycled pool.
  GbdtWorkspace& ws_;
};

// Numerically stable in-place softmax over k contiguous scores.
void SoftmaxInPlace(double* p, size_t k) {
  double mx = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < k; ++i) mx = std::max(mx, p[i]);
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    p[i] = std::exp(p[i] - mx);
    sum += p[i];
  }
  for (size_t i = 0; i < k; ++i) p[i] /= sum;
}

// SoA flattening of one built tree for the training-time score updates.
// Traversal by bin index routes identically to Tree::FindLeaf on the raw
// doubles (dataset.h: Bin(f, v) <= b iff v <= UpperEdge(f, b)) but
// compares a uint8 per node instead of re-deriving the comparison from
// doubles — and the flat arrays replace the TreeNode +
// std::vector<double> pointer chase with the dispatched traversal kernel
// (simd_kernels.h), which walks several rows in flight.
struct BinnedTreeArrays {
  std::vector<int32_t> feature, left, right;
  std::vector<uint8_t> split_bin;
  std::vector<double> leaf_value;

  explicit BinnedTreeArrays(const GbdtTreeBuilder::BuiltTree& built) {
    const size_t n = built.tree.nodes.size();
    feature.resize(n);
    left.resize(n);
    right.resize(n);
    split_bin = built.split_bin;
    leaf_value.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const TreeNode& node = built.tree.nodes[i];
      feature[i] = node.feature;
      left[i] = node.left;
      right[i] = node.right;
      leaf_value[i] = node.feature < 0 ? node.value[0] : 0.0;
    }
  }

  BinnedTreeView View() const {
    return {feature.data(), split_bin.data(), left.data(), right.data(),
            leaf_value.data()};
  }
};

// Per-feature base pointers of a BinnedDataset's columns, the form the
// traversal kernel consumes.
std::vector<const uint8_t*> ColumnPointers(const BinnedDataset& binned) {
  std::vector<const uint8_t*> ptrs(binned.columns.size());
  for (size_t f = 0; f < binned.columns.size(); ++f) {
    ptrs[f] = binned.columns[f].data();
  }
  return ptrs;
}

}  // namespace

GbdtClassifier::GbdtClassifier(GbdtConfig config) : config_(config) {}

Status GbdtClassifier::Fit(const Dataset& d) { return FitImpl(d, nullptr); }

Status GbdtClassifier::FitWithValidation(const Dataset& train,
                                         const Dataset& valid) {
  RVAR_RETURN_NOT_OK(valid.Validate());
  if (valid.y.size() != valid.NumRows() || valid.NumRows() == 0) {
    return Status::InvalidArgument("validation set requires labels");
  }
  return FitImpl(train, &valid);
}

Status GbdtClassifier::FitWarmStart(const Dataset& train,
                                    const GbdtClassifier& parent,
                                    const Dataset* valid) {
  if (parent.num_classes_ < 2 || parent.trees_.empty()) {
    return Status::InvalidArgument("warm-start parent has not been fitted");
  }
  if (valid != nullptr) {
    RVAR_RETURN_NOT_OK(valid->Validate());
    if (valid->y.size() != valid->NumRows() || valid->NumRows() == 0) {
      return Status::InvalidArgument("validation set requires labels");
    }
  }
  return FitImpl(train, valid, &parent);
}

Status GbdtClassifier::FitImpl(const Dataset& train, const Dataset* valid,
                               const GbdtClassifier* parent) {
  RVAR_RETURN_NOT_OK(train.Validate());
  if (train.NumRows() == 0) {
    return Status::InvalidArgument("cannot fit GBDT on empty dataset");
  }
  if (train.y.size() != train.NumRows()) {
    return Status::InvalidArgument("classification requires labels");
  }
  if (config_.num_rounds <= 0 || config_.learning_rate <= 0.0) {
    return Status::InvalidArgument("num_rounds and learning_rate must be > 0");
  }
  if (config_.feature_fraction <= 0.0 || config_.feature_fraction > 1.0 ||
      config_.bagging_fraction <= 0.0 || config_.bagging_fraction > 1.0) {
    return Status::InvalidArgument(
        "feature_fraction and bagging_fraction must be in (0,1]");
  }
  num_classes_ = train.NumClasses();
  if (parent != nullptr) {
    // A sliding retrain window may miss rare classes entirely; the parent's
    // class count is authoritative as long as no label exceeds it.
    if (num_classes_ > parent->num_classes_) {
      return Status::InvalidArgument(
          StrCat("training window holds ", num_classes_,
                 " classes, warm-start parent was fitted with ",
                 parent->num_classes_));
    }
    num_classes_ = parent->num_classes_;
    if (train.NumFeatures() != parent->importance_.size()) {
      return Status::InvalidArgument(
          StrCat("training window holds ", train.NumFeatures(),
                 " features, warm-start parent was fitted with ",
                 parent->importance_.size()));
    }
  }
  if (num_classes_ < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }

  const size_t n = train.NumRows();
  const size_t nf = train.NumFeatures();
  const size_t kc = static_cast<size_t>(num_classes_);

  RVAR_ASSIGN_OR_RETURN(FeatureBinner binner,
                        FeatureBinner::Fit(train, config_.max_bins));
  RVAR_ASSIGN_OR_RETURN(BinnedDataset binned,
                        BinnedDataset::Make(binner, train));
  // The SIMD dispatch row is resolved once per fit; every row produces
  // bit-identical results (simd_kernels.h), so the level — like the
  // thread count — can never change the model.
  const SimdKernels& kern = ActiveSimdKernels();
  const std::vector<const uint8_t*> col_ptrs = ColumnPointers(binned);

  if (parent != nullptr) {
    // Continue the parent's additive expansion: its base scores and trees
    // carry over, and each row starts from its full raw prediction so new
    // trees fit only the residual gradients.
    base_scores_ = parent->base_scores_;
  } else {
    // Base scores: log class priors.
    base_scores_.assign(kc, 0.0);
    std::vector<double> prior(kc, 1e-9);
    for (int label : train.y) prior[static_cast<size_t>(label)] += 1.0;
    for (size_t k = 0; k < kc; ++k) {
      base_scores_[k] = std::log(prior[k] / static_cast<double>(n));
    }
  }

  // Contiguous n x K raw scores and per-round probabilities, allocated
  // once and reused across rounds (row i's slots start at i*kc). Rows
  // write disjoint slots, so the warm-start initialization parallelizes
  // without any cross-thread accumulation.
  std::vector<double> scores(n * kc);
  if (parent != nullptr) {
    ParallelFor(n, /*grain=*/512, [&](size_t begin, size_t end) {
      std::vector<double> raw;
      for (size_t i = begin; i < end; ++i) {
        parent->PredictRawInto(train.x[i], &raw);
        std::copy(raw.begin(), raw.end(),
                  scores.begin() + static_cast<ptrdiff_t>(i * kc));
      }
    });
  } else {
    for (size_t i = 0; i < n; ++i) {
      std::copy(base_scores_.begin(), base_scores_.end(),
                scores.begin() + static_cast<ptrdiff_t>(i * kc));
    }
  }
  std::vector<double> round_proba(n * kc);

  const size_t parent_rounds =
      parent != nullptr ? parent->trees_[0].size() : 0;
  if (parent != nullptr) {
    trees_ = parent->trees_;
    // Inherited gains stay attributed: the parent's normalized importance
    // seeds the accumulator and new split gains add on top before the
    // final renormalization.
    importance_ = parent->importance_;
  } else {
    trees_.assign(kc, {});
    importance_.assign(nf, 0.0);
  }
  Rng rng(config_.seed);

  std::vector<double> grad(n), hess(n);

  // Early-stopping state: validation rows are binned once, and their raw
  // scores advance incrementally with each round's K new trees — O(rounds)
  // tree traversals in total instead of O(rounds^2) re-predictions.
  const bool track_valid =
      valid != nullptr && config_.early_stopping_rounds > 0;
  BinnedDataset valid_binned;
  std::vector<const uint8_t*> valid_col_ptrs;
  std::vector<double> valid_scores;
  if (track_valid) {
    RVAR_ASSIGN_OR_RETURN(valid_binned, BinnedDataset::Make(binner, *valid));
    valid_col_ptrs = ColumnPointers(valid_binned);
    valid_scores.resize(valid->NumRows() * kc);
    if (parent != nullptr) {
      ParallelFor(valid->NumRows(), /*grain=*/512,
                  [&](size_t begin, size_t end) {
        std::vector<double> raw;
        for (size_t i = begin; i < end; ++i) {
          parent->PredictRawInto(valid->x[i], &raw);
          std::copy(raw.begin(), raw.end(),
                    valid_scores.begin() + static_cast<ptrdiff_t>(i * kc));
        }
      });
    } else {
      for (size_t i = 0; i < valid->NumRows(); ++i) {
        std::copy(base_scores_.begin(), base_scores_.end(),
                  valid_scores.begin() + static_cast<ptrdiff_t>(i * kc));
      }
    }
  }

  double best_valid_loss = std::numeric_limits<double>::infinity();
  int best_round = 0;
  int rounds_without_improvement = 0;

  // One workspace for the whole Fit: the histogram pool and gh pairs the
  // first tree allocates are recycled by all num_rounds * K later trees.
  GbdtWorkspace ws;
  for (int round = 0; round < config_.num_rounds; ++round) {
    // Per-tree row bagging (without replacement) and feature subsampling,
    // shared across the K class trees of this round.
    std::vector<size_t> sample_idx;
    if (config_.bagging_fraction < 1.0) {
      std::vector<size_t> perm = rng.Permutation(n);
      const size_t take = std::max<size_t>(
          1, static_cast<size_t>(config_.bagging_fraction *
                                 static_cast<double>(n)));
      sample_idx.assign(perm.begin(), perm.begin() + take);
    } else {
      sample_idx.resize(n);
      std::iota(sample_idx.begin(), sample_idx.end(), 0);
    }
    std::vector<uint8_t> feature_mask(nf, 1);
    if (config_.feature_fraction < 1.0) {
      std::fill(feature_mask.begin(), feature_mask.end(), 0);
      const size_t take = std::max<size_t>(
          1, static_cast<size_t>(config_.feature_fraction *
                                 static_cast<double>(nf)));
      std::vector<size_t> perm = rng.Permutation(nf);
      for (size_t i = 0; i < take; ++i) feature_mask[perm[i]] = 1;
    }

    // Class probabilities at the start of the round; all K trees of the
    // round fit gradients computed from these (standard multiclass GBDT).
    // Row-wise work writes to disjoint slots, so it parallelizes without
    // touching the deterministic-reduction machinery.
    ParallelFor(n, /*grain=*/2048, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        double* p = round_proba.data() + i * kc;
        std::copy(scores.begin() + static_cast<ptrdiff_t>(i * kc),
                  scores.begin() + static_cast<ptrdiff_t>((i + 1) * kc), p);
        SoftmaxInPlace(p, kc);
      }
    });

    for (size_t k = 0; k < kc; ++k) {
      ParallelFor(n, /*grain=*/2048, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const double p = round_proba[i * kc + k];
          const double target =
              static_cast<size_t>(train.y[i]) == k ? 1.0 : 0.0;
          grad[i] = p - target;
          hess[i] = std::max(p * (1.0 - p), 1e-9);
        }
      });
      GbdtTreeBuilder builder(binned, config_, grad, hess, feature_mask,
                              &importance_, &ws);
      GbdtTreeBuilder::BuiltTree built = builder.Build(sample_idx);
      // Update scores with the new tree (all rows, not just the bag) by
      // bin-index traversal over the already-binned columns, through the
      // dispatched blocked-traversal kernel. One add per row, so any
      // blocking is bit-identical to a per-row walk.
      const BinnedTreeArrays flat_tree(built);
      const BinnedTreeView tree_view = flat_tree.View();
      ParallelFor(n, /*grain=*/2048, [&](size_t begin, size_t end) {
        kern.binned_accumulate(tree_view, col_ptrs.data(), begin, end,
                               scores.data() + k, kc);
      });
      if (track_valid) {
        ParallelFor(valid->NumRows(), /*grain=*/512,
                    [&](size_t begin, size_t end) {
          kern.binned_accumulate(tree_view, valid_col_ptrs.data(), begin,
                                 end, valid_scores.data() + k, kc);
        });
      }
      trees_[k].push_back(std::move(built.tree));
    }

    if (track_valid) {
      const size_t nv = valid->NumRows();
      // Logloss as a deterministic chunked reduction; each chunk reuses
      // one kc-wide softmax scratch across its rows.
      const double loss_sum = ParallelReduce<double>(
          nv, /*grain=*/512, 0.0,
          [&](size_t begin, size_t end) {
            double local = 0.0;
            std::vector<double> p(kc);
            for (size_t i = begin; i < end; ++i) {
              std::copy(
                  valid_scores.begin() + static_cast<ptrdiff_t>(i * kc),
                  valid_scores.begin() + static_cast<ptrdiff_t>((i + 1) * kc),
                  p.begin());
              SoftmaxInPlace(p.data(), kc);
              const double py =
                  std::max(p[static_cast<size_t>(valid->y[i])], 1e-12);
              local -= std::log(py);
            }
            return local;
          },
          [](double acc, double part) { return acc + part; });
      const double loss = loss_sum / static_cast<double>(nv);
      if (loss < best_valid_loss - 1e-9) {
        best_valid_loss = loss;
        best_round = round + 1;
        rounds_without_improvement = 0;
      } else if (++rounds_without_improvement >=
                 config_.early_stopping_rounds) {
        // Early stopping truncates only rounds added by this fit; the
        // inherited parent rounds are model state, not candidates.
        for (auto& class_trees : trees_) {
          class_trees.resize(parent_rounds + static_cast<size_t>(best_round));
        }
        break;
      }
    }
  }

  // Normalize importance.
  double total = 0.0;
  for (double v : importance_) total += v;
  if (total > 0.0) {
    for (double& v : importance_) v /= total;
  }
  CompileFlatForest();
  return Status::OK();
}

void GbdtClassifier::CompileFlatForest() {
  flat_ = FlatForest();
  for (const std::vector<Tree>& class_trees : trees_) {
    for (const Tree& tree : class_trees) flat_.Add(tree);
  }
}

void GbdtClassifier::PredictRawInto(const std::vector<double>& row,
                                    std::vector<double>* out) const {
  RVAR_CHECK(!trees_.empty()) << "PredictRaw before Fit";
  RVAR_CHECK_GE(row.size(), flat_.num_features());
  out->assign(base_scores_.begin(), base_scores_.end());
  const double* x = row.data();
  size_t t = 0;
  for (size_t k = 0; k < trees_.size(); ++k) {
    double& score = (*out)[k];
    for (size_t r = 0; r < trees_[k].size(); ++r) {
      score += flat_.PredictScalar(t++, x);
    }
  }
}

void GbdtClassifier::PredictProbaInto(const std::vector<double>& row,
                                      std::vector<double>* out) const {
  PredictRawInto(row, out);
  SoftmaxInPlace(out->data(), out->size());
}

void GbdtClassifier::PredictRawBatchInto(
    const std::vector<std::vector<double>>& rows,
    std::vector<double>* out) const {
  RVAR_CHECK(!trees_.empty()) << "PredictRawBatch before Fit";
  const size_t n = rows.size();
  const size_t kc = base_scores_.size();
  out->resize(n * kc);
  if (n == 0) return;
  // Row blocks fan out over the deterministic pool; within a block, trees
  // run outer and rows inner so one tree's SoA arrays stay cache resident
  // for the whole block. Blocks write disjoint out slots and each (row,
  // class) slot accumulates its trees in round order — exactly
  // PredictRawInto's order — so blocking changes nothing but speed.
  ParallelFor(n, /*grain=*/256, [&](size_t begin, size_t end) {
    // Transpose the block to feature-major once; every tree of the
    // ensemble then traverses it with unit-stride per-feature loads (and
    // the vector kernel with per-row gathers).
    const size_t bn = end - begin;
    const size_t nf = flat_.num_features();
    std::vector<double> block(nf * bn);
    for (size_t i = begin; i < end; ++i) {
      RVAR_CHECK_GE(rows[i].size(), nf);
      const double* row = rows[i].data();
      for (size_t f = 0; f < nf; ++f) block[f * bn + (i - begin)] = row[f];
      std::copy(base_scores_.begin(), base_scores_.end(),
                out->begin() + static_cast<ptrdiff_t>(i * kc));
    }
    size_t t = 0;
    for (size_t k = 0; k < trees_.size(); ++k) {
      for (size_t r = 0; r < trees_[k].size(); ++r, ++t) {
        flat_.AccumulateBlock(t, block.data(), bn, bn,
                              out->data() + begin * kc + k, kc);
      }
    }
  });
}

void GbdtClassifier::PredictProbaBatchInto(
    const std::vector<std::vector<double>>& rows,
    std::vector<double>* out) const {
  PredictRawBatchInto(rows, out);
  const size_t kc = base_scores_.size();
  ParallelFor(rows.size(), /*grain=*/2048, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      SoftmaxInPlace(out->data() + i * kc, kc);
    }
  });
}

std::vector<double> GbdtClassifier::PredictRaw(
    const std::vector<double>& row) const {
  std::vector<double> scores;
  PredictRawInto(row, &scores);
  return scores;
}

std::vector<double> GbdtClassifier::PredictProba(
    const std::vector<double>& row) const {
  std::vector<double> scores;
  PredictProbaInto(row, &scores);
  return scores;
}

const std::vector<Tree>& GbdtClassifier::trees_for_class(int k) const {
  RVAR_CHECK(k >= 0 && static_cast<size_t>(k) < trees_.size());
  return trees_[static_cast<size_t>(k)];
}

double GbdtClassifier::base_score(int k) const {
  RVAR_CHECK(k >= 0 && static_cast<size_t>(k) < base_scores_.size());
  return base_scores_[static_cast<size_t>(k)];
}

int GbdtClassifier::rounds_used() const {
  return trees_.empty() ? 0 : static_cast<int>(trees_[0].size());
}

Result<GbdtClassifier> GbdtClassifier::Restore(
    const GbdtConfig& config, int num_classes,
    std::vector<double> base_scores, std::vector<std::vector<Tree>> trees,
    std::vector<double> importance) {
  if (num_classes < 2) {
    return Status::InvalidArgument(
        StrCat("restore needs >= 2 classes, got ", num_classes));
  }
  const size_t kc = static_cast<size_t>(num_classes);
  if (base_scores.size() != kc || trees.size() != kc) {
    return Status::InvalidArgument(
        StrCat("restore holds ", base_scores.size(), " base scores and ",
               trees.size(), " tree stacks for ", num_classes, " classes"));
  }
  for (double s : base_scores) {
    if (!std::isfinite(s)) {
      return Status::InvalidArgument("base scores must be finite");
    }
  }
  for (double g : importance) {
    if (!std::isfinite(g) || g < 0.0) {
      return Status::InvalidArgument(
          "feature importance must be finite and >= 0");
    }
  }
  const int num_features = static_cast<int>(importance.size());
  const size_t rounds = trees[0].size();
  for (size_t k = 0; k < kc; ++k) {
    if (trees[k].size() != rounds) {
      return Status::InvalidArgument(
          StrCat("class ", k, " holds ", trees[k].size(),
                 " rounds, class 0 holds ", rounds));
    }
    for (size_t r = 0; r < rounds; ++r) {
      Status st = ValidateTree(trees[k][r], num_features, 1);
      if (!st.ok()) {
        return Status::InvalidArgument(StrCat("class ", k, " round ", r,
                                              ": ", st.message()));
      }
    }
  }
  GbdtClassifier model(config);
  model.num_classes_ = num_classes;
  model.base_scores_ = std::move(base_scores);
  model.trees_ = std::move(trees);
  model.importance_ = std::move(importance);
  model.CompileFlatForest();
  return model;
}

}  // namespace ml
}  // namespace rvar
