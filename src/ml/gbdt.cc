#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "common/parallel.h"
#include "common/strings.h"

namespace rvar {
namespace ml {
namespace {

// A grown-but-unexpanded leaf with its best split precomputed.
struct LeafCandidate {
  int node_id;
  size_t begin, end;  // span in the index array
  int depth;
  double gain;
  int feature;
  int bin;

  bool operator<(const LeafCandidate& other) const {
    return gain < other.gain;  // max-heap on gain
  }
};

// Trains one Newton tree on (grad, hess) with leaf-wise growth.
// Leaf values are -G/(H+lambda) * learning_rate.
class GbdtTreeBuilder {
 public:
  GbdtTreeBuilder(const BinnedDataset& data, const GbdtConfig& config,
                  const std::vector<double>& grad,
                  const std::vector<double>& hess,
                  const std::vector<uint8_t>& feature_mask,
                  std::vector<double>* importance)
      : data_(data),
        config_(config),
        grad_(grad),
        hess_(hess),
        feature_mask_(feature_mask),
        importance_(importance) {}

  Tree Build(std::vector<size_t> sample_idx) {
    idx_ = std::move(sample_idx);
    tree_.nodes.clear();

    std::priority_queue<LeafCandidate> heap;
    const int root = NewLeaf(0, idx_.size());
    LeafCandidate root_cand{root, 0, idx_.size(), 0, 0.0, -1, -1};
    FindBestSplit(&root_cand);
    if (root_cand.feature >= 0) heap.push(root_cand);

    int num_leaves = 1;
    while (!heap.empty() && num_leaves < config_.max_leaves) {
      LeafCandidate cand = heap.top();
      heap.pop();
      if (cand.gain < config_.min_gain) break;

      // Partition the span on the chosen (feature, bin).
      const std::vector<uint8_t>& col =
          data_.columns[static_cast<size_t>(cand.feature)];
      auto mid_it = std::partition(
          idx_.begin() + static_cast<ptrdiff_t>(cand.begin),
          idx_.begin() + static_cast<ptrdiff_t>(cand.end),
          [&](size_t row) { return col[row] <= static_cast<uint8_t>(cand.bin); });
      const size_t mid = static_cast<size_t>(mid_it - idx_.begin());
      if (mid == cand.begin || mid == cand.end) continue;  // degenerate

      if (importance_ != nullptr) {
        (*importance_)[static_cast<size_t>(cand.feature)] += cand.gain;
      }

      TreeNode& node = tree_.nodes[static_cast<size_t>(cand.node_id)];
      node.feature = cand.feature;
      node.threshold = data_.binner->UpperEdge(
          static_cast<size_t>(cand.feature), cand.bin);
      const int left = NewLeaf(cand.begin, mid);
      const int right = NewLeaf(mid, cand.end);
      tree_.nodes[static_cast<size_t>(cand.node_id)].left = left;
      tree_.nodes[static_cast<size_t>(cand.node_id)].right = right;
      ++num_leaves;

      if (cand.depth + 1 < config_.max_depth) {
        LeafCandidate lc{left, cand.begin, mid, cand.depth + 1, 0.0, -1, -1};
        FindBestSplit(&lc);
        if (lc.feature >= 0) heap.push(lc);
        LeafCandidate rc{right, mid, cand.end, cand.depth + 1, 0.0, -1, -1};
        FindBestSplit(&rc);
        if (rc.feature >= 0) heap.push(rc);
      }
    }
    return std::move(tree_);
  }

 private:
  // Creates a leaf node covering idx_[begin, end); returns its id.
  int NewLeaf(size_t begin, size_t end) {
    double g = 0.0, h = 0.0;
    for (size_t i = begin; i < end; ++i) {
      g += grad_[idx_[i]];
      h += hess_[idx_[i]];
    }
    TreeNode node;
    node.value = {-g / (h + config_.lambda_l2) * config_.learning_rate};
    node.cover = h;
    tree_.nodes.push_back(std::move(node));
    return static_cast<int>(tree_.nodes.size()) - 1;
  }

  // XGBoost split gain: 1/2 [GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l)].
  double SplitGain(double gl, double hl, double gr, double hr) const {
    const double l = config_.lambda_l2;
    const double g = gl + gr, h = hl + hr;
    return 0.5 * (gl * gl / (hl + l) + gr * gr / (hr + l) - g * g / (h + l));
  }

  // Best (gain, feature, bin) over a contiguous feature range; the split
  // search below fans these out per feature and merges them in feature
  // order so the winner matches the serial scan exactly (strictly greater
  // gain replaces, so the lowest feature index wins ties).
  struct SplitChoice {
    double gain = -1.0;
    int feature = -1;
    int bin = -1;
  };

  void FindBestSplit(LeafCandidate* cand) {
    cand->feature = -1;
    cand->gain = -1.0;
    const size_t n = cand->end - cand->begin;
    if (n < 2 * static_cast<size_t>(config_.min_samples_leaf)) return;

    double node_g = 0.0, node_h = 0.0;
    for (size_t i = cand->begin; i < cand->end; ++i) {
      node_g += grad_[idx_[i]];
      node_h += hess_[idx_[i]];
    }

    // Per-feature histogram build + scan is independent across features;
    // each chunk keeps its own histogram scratch.
    const SplitChoice best = ParallelReduce<SplitChoice>(
        data_.columns.size(), /*grain=*/2, SplitChoice{},
        [&](size_t fbegin, size_t fend) {
          SplitChoice local;
          std::vector<double> hist_g, hist_h;
          std::vector<int> hist_n;
          for (size_t f = fbegin; f < fend; ++f) {
            if (!feature_mask_[f]) continue;
            const int num_bins = data_.binner->NumBins(f);
            if (num_bins < 2) continue;

            hist_g.assign(static_cast<size_t>(num_bins), 0.0);
            hist_h.assign(static_cast<size_t>(num_bins), 0.0);
            hist_n.assign(static_cast<size_t>(num_bins), 0);
            const std::vector<uint8_t>& col = data_.columns[f];
            for (size_t i = cand->begin; i < cand->end; ++i) {
              const size_t row = idx_[i];
              const size_t b = col[row];
              hist_g[b] += grad_[row];
              hist_h[b] += hess_[row];
              hist_n[b] += 1;
            }

            double gl = 0.0, hl = 0.0;
            size_t nl = 0;
            for (int b = 0; b + 1 < num_bins; ++b) {
              gl += hist_g[static_cast<size_t>(b)];
              hl += hist_h[static_cast<size_t>(b)];
              nl += hist_n[static_cast<size_t>(b)];
              const size_t nr = n - nl;
              if (nl < static_cast<size_t>(config_.min_samples_leaf) ||
                  nr < static_cast<size_t>(config_.min_samples_leaf)) {
                continue;
              }
              const double hr = node_h - hl;
              if (hl < config_.min_child_weight ||
                  hr < config_.min_child_weight) {
                continue;
              }
              const double gain = SplitGain(gl, hl, node_g - gl, hr);
              if (gain > local.gain) {
                local.gain = gain;
                local.feature = static_cast<int>(f);
                local.bin = b;
              }
            }
          }
          return local;
        },
        [](SplitChoice acc, SplitChoice part) {
          return part.gain > acc.gain ? part : acc;
        });
    cand->gain = best.gain;
    cand->feature = best.feature;
    cand->bin = best.bin;
  }

  const BinnedDataset& data_;
  const GbdtConfig& config_;
  const std::vector<double>& grad_;
  const std::vector<double>& hess_;
  const std::vector<uint8_t>& feature_mask_;
  std::vector<double>* importance_;
  std::vector<size_t> idx_;
  Tree tree_;
};

// Numerically stable in-place softmax.
void Softmax(std::vector<double>* scores) {
  double mx = -std::numeric_limits<double>::infinity();
  for (double s : *scores) mx = std::max(mx, s);
  double sum = 0.0;
  for (double& s : *scores) {
    s = std::exp(s - mx);
    sum += s;
  }
  for (double& s : *scores) s /= sum;
}

}  // namespace

GbdtClassifier::GbdtClassifier(GbdtConfig config) : config_(config) {}

Status GbdtClassifier::Fit(const Dataset& d) { return FitImpl(d, nullptr); }

Status GbdtClassifier::FitWithValidation(const Dataset& train,
                                         const Dataset& valid) {
  RVAR_RETURN_NOT_OK(valid.Validate());
  if (valid.y.size() != valid.NumRows() || valid.NumRows() == 0) {
    return Status::InvalidArgument("validation set requires labels");
  }
  return FitImpl(train, &valid);
}

Status GbdtClassifier::FitImpl(const Dataset& train, const Dataset* valid) {
  RVAR_RETURN_NOT_OK(train.Validate());
  if (train.NumRows() == 0) {
    return Status::InvalidArgument("cannot fit GBDT on empty dataset");
  }
  if (train.y.size() != train.NumRows()) {
    return Status::InvalidArgument("classification requires labels");
  }
  if (config_.num_rounds <= 0 || config_.learning_rate <= 0.0) {
    return Status::InvalidArgument("num_rounds and learning_rate must be > 0");
  }
  if (config_.feature_fraction <= 0.0 || config_.feature_fraction > 1.0 ||
      config_.bagging_fraction <= 0.0 || config_.bagging_fraction > 1.0) {
    return Status::InvalidArgument(
        "feature_fraction and bagging_fraction must be in (0,1]");
  }
  num_classes_ = train.NumClasses();
  if (num_classes_ < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }

  const size_t n = train.NumRows();
  const size_t nf = train.NumFeatures();
  const size_t kc = static_cast<size_t>(num_classes_);

  RVAR_ASSIGN_OR_RETURN(FeatureBinner binner,
                        FeatureBinner::Fit(train, config_.max_bins));
  RVAR_ASSIGN_OR_RETURN(BinnedDataset binned,
                        BinnedDataset::Make(binner, train));

  // Base scores: log class priors.
  base_scores_.assign(kc, 0.0);
  {
    std::vector<double> prior(kc, 1e-9);
    for (int label : train.y) prior[static_cast<size_t>(label)] += 1.0;
    for (size_t k = 0; k < kc; ++k) {
      base_scores_[k] = std::log(prior[k] / static_cast<double>(n));
    }
  }

  // Raw scores per row per class.
  std::vector<std::vector<double>> scores(n,
                                          std::vector<double>(kc, 0.0));
  for (size_t i = 0; i < n; ++i) scores[i] = base_scores_;

  trees_.assign(kc, {});
  importance_.assign(nf, 0.0);
  Rng rng(config_.seed);

  std::vector<double> grad(n), hess(n);

  double best_valid_loss = std::numeric_limits<double>::infinity();
  int best_round = 0;
  int rounds_without_improvement = 0;

  for (int round = 0; round < config_.num_rounds; ++round) {
    // Per-tree row bagging (without replacement) and feature subsampling,
    // shared across the K class trees of this round.
    std::vector<size_t> sample_idx;
    if (config_.bagging_fraction < 1.0) {
      std::vector<size_t> perm = rng.Permutation(n);
      const size_t take = std::max<size_t>(
          1, static_cast<size_t>(config_.bagging_fraction *
                                 static_cast<double>(n)));
      sample_idx.assign(perm.begin(), perm.begin() + take);
    } else {
      sample_idx.resize(n);
      std::iota(sample_idx.begin(), sample_idx.end(), 0);
    }
    std::vector<uint8_t> feature_mask(nf, 1);
    if (config_.feature_fraction < 1.0) {
      std::fill(feature_mask.begin(), feature_mask.end(), 0);
      const size_t take = std::max<size_t>(
          1, static_cast<size_t>(config_.feature_fraction *
                                 static_cast<double>(nf)));
      std::vector<size_t> perm = rng.Permutation(nf);
      for (size_t i = 0; i < take; ++i) feature_mask[perm[i]] = 1;
    }

    // Class probabilities at the start of the round; all K trees of the
    // round fit gradients computed from these (standard multiclass GBDT).
    // Row-wise work writes to disjoint slots, so it parallelizes without
    // touching the deterministic-reduction machinery.
    std::vector<std::vector<double>> round_proba(n);
    ParallelFor(n, /*grain=*/512, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        round_proba[i] = scores[i];
        Softmax(&round_proba[i]);
      }
    });

    for (size_t k = 0; k < kc; ++k) {
      ParallelFor(n, /*grain=*/1024, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const double p = round_proba[i][k];
          const double target =
              static_cast<size_t>(train.y[i]) == k ? 1.0 : 0.0;
          grad[i] = p - target;
          hess[i] = std::max(p * (1.0 - p), 1e-9);
        }
      });
      GbdtTreeBuilder builder(binned, config_, grad, hess, feature_mask,
                              &importance_);
      Tree tree = builder.Build(sample_idx);
      // Update scores with the new tree (all rows, not just the bag).
      ParallelFor(n, /*grain=*/512, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          scores[i][k] += tree.PredictScalar(train.x[i]);
        }
      });
      trees_[k].push_back(std::move(tree));
    }

    if (valid != nullptr && config_.early_stopping_rounds > 0) {
      double loss = 0.0;
      for (size_t i = 0; i < valid->NumRows(); ++i) {
        std::vector<double> p = PredictProba(valid->x[i]);
        const double py =
            std::max(p[static_cast<size_t>(valid->y[i])], 1e-12);
        loss -= std::log(py);
      }
      loss /= static_cast<double>(valid->NumRows());
      if (loss < best_valid_loss - 1e-9) {
        best_valid_loss = loss;
        best_round = round + 1;
        rounds_without_improvement = 0;
      } else if (++rounds_without_improvement >=
                 config_.early_stopping_rounds) {
        for (auto& class_trees : trees_) {
          class_trees.resize(static_cast<size_t>(best_round));
        }
        break;
      }
    }
  }

  // Normalize importance.
  double total = 0.0;
  for (double v : importance_) total += v;
  if (total > 0.0) {
    for (double& v : importance_) v /= total;
  }
  return Status::OK();
}

std::vector<double> GbdtClassifier::PredictRaw(
    const std::vector<double>& row) const {
  RVAR_CHECK(!trees_.empty()) << "PredictRaw before Fit";
  std::vector<double> scores = base_scores_;
  for (size_t k = 0; k < trees_.size(); ++k) {
    for (const Tree& tree : trees_[k]) {
      scores[k] += tree.PredictScalar(row);
    }
  }
  return scores;
}

std::vector<double> GbdtClassifier::PredictProba(
    const std::vector<double>& row) const {
  std::vector<double> scores = PredictRaw(row);
  Softmax(&scores);
  return scores;
}

const std::vector<Tree>& GbdtClassifier::trees_for_class(int k) const {
  RVAR_CHECK(k >= 0 && static_cast<size_t>(k) < trees_.size());
  return trees_[static_cast<size_t>(k)];
}

double GbdtClassifier::base_score(int k) const {
  RVAR_CHECK(k >= 0 && static_cast<size_t>(k) < base_scores_.size());
  return base_scores_[static_cast<size_t>(k)];
}

int GbdtClassifier::rounds_used() const {
  return trees_.empty() ? 0 : static_cast<int>(trees_[0].size());
}

Result<GbdtClassifier> GbdtClassifier::Restore(
    const GbdtConfig& config, int num_classes,
    std::vector<double> base_scores, std::vector<std::vector<Tree>> trees,
    std::vector<double> importance) {
  if (num_classes < 2) {
    return Status::InvalidArgument(
        StrCat("restore needs >= 2 classes, got ", num_classes));
  }
  const size_t kc = static_cast<size_t>(num_classes);
  if (base_scores.size() != kc || trees.size() != kc) {
    return Status::InvalidArgument(
        StrCat("restore holds ", base_scores.size(), " base scores and ",
               trees.size(), " tree stacks for ", num_classes, " classes"));
  }
  for (double s : base_scores) {
    if (!std::isfinite(s)) {
      return Status::InvalidArgument("base scores must be finite");
    }
  }
  for (double g : importance) {
    if (!std::isfinite(g) || g < 0.0) {
      return Status::InvalidArgument(
          "feature importance must be finite and >= 0");
    }
  }
  const int num_features = static_cast<int>(importance.size());
  const size_t rounds = trees[0].size();
  for (size_t k = 0; k < kc; ++k) {
    if (trees[k].size() != rounds) {
      return Status::InvalidArgument(
          StrCat("class ", k, " holds ", trees[k].size(),
                 " rounds, class 0 holds ", rounds));
    }
    for (size_t r = 0; r < rounds; ++r) {
      Status st = ValidateTree(trees[k][r], num_features, 1);
      if (!st.ok()) {
        return Status::InvalidArgument(StrCat("class ", k, " round ", r,
                                              ": ", st.message()));
      }
    }
  }
  GbdtClassifier model(config);
  model.num_classes_ = num_classes;
  model.base_scores_ = std::move(base_scores);
  model.trees_ = std::move(trees);
  model.importance_ = std::move(importance);
  return model;
}

}  // namespace ml
}  // namespace rvar
