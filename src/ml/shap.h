// Copyright 2026 The rvar Authors.
//
// Shapley-value explanations for tree ensembles: exact TreeSHAP (Lundberg &
// Lee) over the shared Tree representation, plus adapters for the GBDT and
// random-forest classifiers. Used in Section 6 of the paper to attribute a
// job's predicted distribution shape to its features.

#ifndef RVAR_ML_SHAP_H_
#define RVAR_ML_SHAP_H_

#include <vector>

#include "common/result.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/tree.h"

namespace rvar {
namespace ml {

/// Exact TreeSHAP for one tree and one instance, explaining output index
/// `output_k` of the leaf value vectors.
///
/// Returns phi of length `num_features` satisfying the local-accuracy
/// property: sum(phi) + base == tree prediction for x, where base (written
/// to *base_out if non-null) is the cover-weighted mean leaf value.
Result<std::vector<double>> TreeShap(const Tree& tree, int output_k,
                                     const std::vector<double>& x,
                                     size_t num_features,
                                     double* base_out = nullptr);

/// \brief Additive attributions for a multiclass model at one instance.
struct ShapExplanation {
  /// phi[k][f]: contribution of feature f to class k's score.
  std::vector<std::vector<double>> phi;
  /// base[k]: expected class-k score over the training distribution.
  std::vector<double> base;

  /// sum_f phi[k][f] + base[k] — should equal the model's class-k score.
  double ReconstructedScore(int k) const;
};

/// SHAP for the GBDT classifier, in raw (pre-softmax) score space: the sum
/// over each class's trees plus the class base score.
Result<ShapExplanation> ShapForGbdt(const GbdtClassifier& model,
                                    const std::vector<double>& x,
                                    size_t num_features);

/// SHAP for the random-forest classifier, in probability space (mean over
/// trees of per-tree class-probability attributions).
Result<ShapExplanation> ShapForForest(const RandomForestClassifier& model,
                                      const std::vector<double>& x,
                                      size_t num_features);

/// Mean |phi| per feature for class k over a batch of instances — the
/// global importance ranking used for the paper's Figure 9 summaries.
/// `explanations` must all share feature count and class count.
std::vector<double> MeanAbsoluteShap(
    const std::vector<ShapExplanation>& explanations, int k);

}  // namespace ml
}  // namespace rvar

#endif  // RVAR_ML_SHAP_H_
