// Copyright 2026 The rvar Authors.
//
// TextTable: fixed-width text tables for the benchmark harness, so each
// bench binary can print paper-style rows (Table 1, Table 2, scenario
// migration matrices, ...) in a readable, diffable format.

#ifndef RVAR_COMMON_TABLE_H_
#define RVAR_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace rvar {

/// \brief Accumulates rows of string cells and renders them with aligned
/// columns. The first added row is treated as the header.
class TextTable {
 public:
  /// Sets the header row; resets any prior content.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row. Rows may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }

  /// Renders the table with a separator line under the header.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rvar

#endif  // RVAR_COMMON_TABLE_H_
