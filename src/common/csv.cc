#include "common/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "common/check.h"
#include "common/strings.h"

namespace rvar {

std::string CsvWriter::EscapeCell(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) buffer_ += ',';
    buffer_ += EscapeCell(cells[i]);
  }
  buffer_ += '\n';
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  out << buffer_;
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  size_t line = 1;  // 1-based, for error messages
  bool in_quotes = false;
  bool cell_was_quoted = false;

  const auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_was_quoted = false;
  };
  const auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';  // doubled quote = literal quote
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!cell.empty() || cell_was_quoted) {
          return Status::InvalidArgument(
              StrCat("line ", line, ": quote inside an unquoted cell"));
        }
        in_quotes = true;
        cell_was_quoted = true;
        break;
      case ',':
        end_cell();
        break;
      case '\r':
        // Only as part of a CRLF line ending.
        if (i + 1 >= text.size() || text[i + 1] != '\n') {
          return Status::InvalidArgument(
              StrCat("line ", line, ": bare carriage return"));
        }
        break;
      case '\n':
        end_row();
        ++line;
        break;
      default:
        if (cell_was_quoted) {
          return Status::InvalidArgument(
              StrCat("line ", line, ": bytes after a closing quote"));
        }
        cell += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument(
        StrCat("line ", line, ": unterminated quoted cell"));
  }
  // Final row without a trailing newline.
  if (!cell.empty() || cell_was_quoted || !row.empty()) end_row();
  return rows;
}

Result<CsvTable> CsvTable::Parse(std::string_view text) {
  RVAR_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                        ParseCsv(text));
  if (rows.empty()) {
    return Status::InvalidArgument("empty CSV: no header row");
  }
  CsvTable table;
  table.header_ = std::move(rows.front());
  for (size_t i = 0; i < table.header_.size(); ++i) {
    table.column_index_[table.header_[i]] = static_cast<int>(i);
  }
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != table.header_.size()) {
      return Status::InvalidArgument(
          StrCat("ragged row at line ", r + 1, ": ", rows[r].size(),
                 " cells, header has ", table.header_.size()));
    }
    table.rows_.push_back(std::move(rows[r]));
  }
  return table;
}

const std::string& CsvTable::cell(size_t row, size_t col) const {
  RVAR_CHECK_LT(row, rows_.size());
  RVAR_CHECK_LT(col, header_.size());
  return rows_[row][col];
}

int CsvTable::ColumnIndex(const std::string& name) const {
  const auto it = column_index_.find(name);
  return it == column_index_.end() ? -1 : it->second;
}

Result<double> CsvTable::NumericCell(size_t row, size_t col) const {
  const std::string& s = cell(row, col);
  if (s.empty()) {
    return Status::InvalidArgument(
        StrCat("line ", row + 2, ", column \"", header_[col],
               "\": empty cell where a number is required"));
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE ||
      !std::isfinite(v)) {
    return Status::InvalidArgument(
        StrCat("line ", row + 2, ", column \"", header_[col],
               "\": \"", s, "\" is not a finite number"));
  }
  return v;
}

Result<int64_t> CsvTable::IntegerCell(size_t row, size_t col) const {
  const std::string& s = cell(row, col);
  if (s.empty()) {
    return Status::InvalidArgument(
        StrCat("line ", row + 2, ", column \"", header_[col],
               "\": empty cell where an integer is required"));
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    return Status::InvalidArgument(
        StrCat("line ", row + 2, ", column \"", header_[col],
               "\": \"", s, "\" is not an integer"));
  }
  return static_cast<int64_t>(v);
}

}  // namespace rvar
