#include "common/csv.h"

#include <fstream>

namespace rvar {

std::string CsvWriter::EscapeCell(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) buffer_ += ',';
    buffer_ += EscapeCell(cells[i]);
  }
  buffer_ += '\n';
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  out << buffer_;
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace rvar
