// Copyright 2026 The rvar Authors.
//
// Stable hashing used for job plan signatures (the paper computes a hash
// recursively over the compiled operator DAG to identify recurring jobs).
// These hashes must be stable across runs and platforms, so we use FNV-1a
// rather than std::hash.

#ifndef RVAR_COMMON_HASH_H_
#define RVAR_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace rvar {

inline constexpr uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

/// FNV-1a over a byte string, continuing from `seed`.
inline uint64_t Fnv1a(std::string_view bytes, uint64_t seed = kFnvOffsetBasis) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// Mixes a 64-bit value into a running hash (order-sensitive).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace rvar

#endif  // RVAR_COMMON_HASH_H_
