#include "common/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/strings.h"

namespace rvar {
namespace {

SimdLevel Clamp(SimdLevel level) {
  return level > MaxSupportedSimdLevel() ? MaxSupportedSimdLevel() : level;
}

// -1 = not yet resolved; otherwise a SimdLevel value. Plain int so the
// atomic stays lock-free everywhere.
std::atomic<int> g_active_level{-1};

SimdLevel ResolveFromEnvironment() {
  const char* env = std::getenv("RVAR_SIMD_LEVEL");
  if (env == nullptr || *env == '\0') return MaxSupportedSimdLevel();
  const Result<SimdLevel> parsed = ParseSimdLevel(env);
  if (!parsed.ok()) {
    std::fprintf(stderr, "rvar: ignoring RVAR_SIMD_LEVEL: %s\n",
                 parsed.status().message().c_str());
    return MaxSupportedSimdLevel();
  }
  return Clamp(*parsed);
}

}  // namespace

SimdLevel MaxSupportedSimdLevel() {
#if defined(RVAR_SIMD_X86)
  static const SimdLevel max = [] {
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
    if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSse42;
    return SimdLevel::kScalar;
  }();
  return max;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ActiveSimdLevel() {
  int level = g_active_level.load(std::memory_order_acquire);
  if (level < 0) {
    level = static_cast<int>(ResolveFromEnvironment());
    // First resolver wins; a concurrent SetSimdLevel is kept instead.
    int expected = -1;
    if (!g_active_level.compare_exchange_strong(expected, level,
                                                std::memory_order_acq_rel)) {
      level = expected;
    }
  }
  return static_cast<SimdLevel>(level);
}

SimdLevel SetSimdLevel(SimdLevel level) {
  const SimdLevel effective = Clamp(level);
  g_active_level.store(static_cast<int>(effective),
                       std::memory_order_release);
  return effective;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse42:
      return "sse42";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

Result<SimdLevel> ParseSimdLevel(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "sse42") return SimdLevel::kSse42;
  if (name == "avx2") return SimdLevel::kAvx2;
  return Status::InvalidArgument(
      StrCat("unknown SIMD level \"", name,
             "\" (expected scalar, sse42 or avx2)"));
}

}  // namespace rvar
