// Copyright 2026 The rvar Authors.
//
// Deterministic random number generation. Every stochastic component in the
// library (simulator, ML, sampling) draws from an explicitly seeded Rng so
// that experiments are reproducible run-to-run.

#ifndef RVAR_COMMON_RNG_H_
#define RVAR_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace rvar {

/// \brief A small, fast, deterministic PRNG (xoshiro256**) with convenience
/// draws for the distributions used across the library.
///
/// Not thread-safe; create one Rng per thread / component. Forking via
/// Split() yields an independent stream, which is the preferred way to hand
/// randomness to subcomponents without coupling their draw sequences.
class Rng {
 public:
  /// Seeds the generator. Two Rng with the same seed produce identical
  /// streams on all platforms.
  explicit Rng(uint64_t seed = 0xC0FFEE123456789ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Independent generator derived from this one's stream.
  Rng Split();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached spare deviate).
  double Normal();

  /// Normal with the given mean and stddev.
  double Normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)) — the canonical heavy-ish runtime
  /// noise model.
  double LogNormal(double mu, double sigma);

  /// Exponential with the given rate (lambda > 0).
  double Exponential(double rate);

  /// Pareto (Lomax-style tail): xm * U^(-1/alpha); used for rare-event
  /// slowdown magnitudes.
  double Pareto(double xm, double alpha);

  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia-Tsang.
  double Gamma(double shape, double scale);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Poisson-distributed count with the given mean (>= 0).
  int64_t Poisson(double mean);

  /// Index drawn proportionally to non-negative `weights` (not necessarily
  /// normalized). Requires a positive total weight.
  size_t Categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

 private:
  uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace rvar

#endif  // RVAR_COMMON_RNG_H_
