#include "common/rng.h"

#include <cmath>

namespace rvar {
namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit seed.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Split() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  RVAR_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  RVAR_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double rate) {
  RVAR_CHECK_GT(rate, 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

double Rng::Pareto(double xm, double alpha) {
  RVAR_CHECK_GT(xm, 0.0);
  RVAR_CHECK_GT(alpha, 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return xm * std::pow(u, -1.0 / alpha);
}

double Rng::Gamma(double shape, double scale) {
  RVAR_CHECK_GT(shape, 0.0);
  RVAR_CHECK_GT(scale, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct (Marsaglia-Tsang trick).
    const double u = std::max(Uniform(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

int64_t Rng::Poisson(double mean) {
  RVAR_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    int64_t k = 0;
    double prod = Uniform();
    while (prod > limit) {
      ++k;
      prod *= Uniform();
    }
    return k;
  }
  // Normal approximation for large means, clamped at zero.
  const double v = Normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  RVAR_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    RVAR_CHECK_GE(w, 0.0);
    total += w;
  }
  RVAR_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace rvar
