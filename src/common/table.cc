#include "common/table.h"

#include <algorithm>

namespace rvar {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
  rows_.clear();
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<size_t> widths(ncols, 0);
  auto account = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  };
  account(header_);
  for (const auto& r : rows_) account(r);

  auto render_row = [&](const std::vector<std::string>& r) {
    std::string line;
    for (size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string();
      line += cell;
      if (i + 1 < ncols) {
        line.append(widths[i] - cell.size() + 2, ' ');
      }
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t i = 0; i < ncols; ++i) total += widths[i] + (i + 1 < ncols ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& r : rows_) out += render_row(r);
  return out;
}

}  // namespace rvar
