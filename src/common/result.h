// Copyright 2026 The rvar Authors.
//
// Result<T>: a value-or-Status union, the companion of Status for functions
// that produce a value on success (Arrow's arrow::Result idiom).

#ifndef RVAR_COMMON_RESULT_H_
#define RVAR_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace rvar {

/// \brief Holds either a successfully computed T or the Status describing
/// why it could not be computed.
///
/// Accessing the value of an errored Result is a programmer error and aborts
/// via RVAR_CHECK. Typical use:
///
///   Result<Histogram> r = BuildHistogram(...);
///   if (!r.ok()) return r.status();
///   const Histogram& h = *r;
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK Status (failure). Constructing from an OK
  /// status is a programmer error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    RVAR_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the status: OK() if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    RVAR_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    RVAR_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    RVAR_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` if errored.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace rvar

/// Assigns the unwrapped value of a Result-returning expression to `lhs`, or
/// propagates its error Status. Only usable in Status/Result functions.
/// Variadic so `lhs` types containing commas (e.g. std::map<K, V>) work.
#define RVAR_ASSIGN_OR_RETURN(lhs, ...)            \
  RVAR_ASSIGN_OR_RETURN_IMPL_(                     \
      RVAR_CONCAT_(_rvar_result_, __LINE__), lhs, __VA_ARGS__)

#define RVAR_CONCAT_INNER_(a, b) a##b
#define RVAR_CONCAT_(a, b) RVAR_CONCAT_INNER_(a, b)
#define RVAR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, ...) \
  auto tmp = (__VA_ARGS__);                        \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie()

#endif  // RVAR_COMMON_RESULT_H_
