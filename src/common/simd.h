// Copyright 2026 The rvar Authors.
//
// Runtime SIMD level selection (DESIGN.md §14). The build compiles every
// vector kernel next to its reference scalar implementation and picks
// between them through a dispatch table indexed by the level returned
// here — the table is data, not preprocessor soup, so the scalar path is
// always present, always tested, and is what sanitizer and non-x86 builds
// run.
//
// The level is resolved once, lazily, from (in priority order) the
// RVAR_SIMD_LEVEL environment variable ("scalar", "sse42" or "avx2",
// clamped to what the CPU supports) and otherwise cpuid. Tests and
// benchmarks may override it with SetSimdLevel; kernels dispatched at
// different levels are required to produce bit-identical results, so the
// override can never change any model or prediction — only the speed.

#ifndef RVAR_COMMON_SIMD_H_
#define RVAR_COMMON_SIMD_H_

#include "common/result.h"

namespace rvar {

/// Instruction-set tiers the dispatch tables are indexed by. Values are
/// ordered: a CPU supporting level L supports every level below it.
enum class SimdLevel : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

inline constexpr int kNumSimdLevels = 3;

/// Highest level this binary can run on this machine: cpuid-probed when
/// built with RVAR_SIMD on x86-64, kScalar otherwise. Never changes.
SimdLevel MaxSupportedSimdLevel();

/// The level dispatch tables use. Resolved once on first call: the
/// RVAR_SIMD_LEVEL environment variable if set and valid (clamped to
/// MaxSupportedSimdLevel), else MaxSupportedSimdLevel().
SimdLevel ActiveSimdLevel();

/// Overrides the active level (clamped to MaxSupportedSimdLevel) and
/// returns the level actually in effect. For tests and benchmarks that
/// compare dispatch paths; not thread-safe against concurrent kernels.
SimdLevel SetSimdLevel(SimdLevel level);

/// "scalar", "sse42" or "avx2".
const char* SimdLevelName(SimdLevel level);

/// Parses a SimdLevelName string (the RVAR_SIMD_LEVEL syntax).
Result<SimdLevel> ParseSimdLevel(const std::string& name);

}  // namespace rvar

#endif  // RVAR_COMMON_SIMD_H_
