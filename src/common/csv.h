// Copyright 2026 The rvar Authors.
//
// Minimal CSV writing for exporting experiment data (e.g. so figures can be
// re-plotted externally). Quoting handles commas/quotes/newlines.

#ifndef RVAR_COMMON_CSV_H_
#define RVAR_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace rvar {

/// \brief Row-at-a-time CSV serializer.
class CsvWriter {
 public:
  /// Appends one row; cells are quoted as needed.
  void AddRow(const std::vector<std::string>& cells);

  /// The CSV document accumulated so far.
  const std::string& contents() const { return buffer_; }

  /// Writes the accumulated document to `path`.
  Status WriteToFile(const std::string& path) const;

  /// Escapes one CSV cell (exposed for tests).
  static std::string EscapeCell(const std::string& cell);

 private:
  std::string buffer_;
};

}  // namespace rvar

#endif  // RVAR_COMMON_CSV_H_
