// Copyright 2026 The rvar Authors.
//
// CSV writing and strict CSV parsing for experiment data (e.g. so figures
// can be re-plotted externally and telemetry exports can be re-imported).
// Quoting handles commas/quotes/newlines. The parser is validating: an
// unterminated quote, a ragged row, or a non-numeric cell where a number
// is required yields a clear Status naming the offending row/column —
// never a silent misparse.

#ifndef RVAR_COMMON_CSV_H_
#define RVAR_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rvar {

/// \brief Row-at-a-time CSV serializer.
class CsvWriter {
 public:
  /// Appends one row; cells are quoted as needed.
  void AddRow(const std::vector<std::string>& cells);

  /// The CSV document accumulated so far.
  const std::string& contents() const { return buffer_; }

  /// Writes the accumulated document to `path`.
  Status WriteToFile(const std::string& path) const;

  /// Escapes one CSV cell (exposed for tests).
  static std::string EscapeCell(const std::string& cell);

 private:
  std::string buffer_;
};

/// Parses a CSV document into rows of unescaped cells (RFC-4180 style:
/// quoted cells may contain commas, doubled quotes, and newlines). Fails
/// on an unterminated quote or on bytes between a closing quote and the
/// next delimiter. Does not require rectangular rows — see CsvTable.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// \brief A parsed CSV with a header row and rectangular data rows.
///
/// Parse() rejects a document whose rows disagree on width ("ragged"),
/// naming the first offending row, so column positions can never silently
/// shift mid-file.
class CsvTable {
 public:
  static Result<CsvTable> Parse(std::string_view text);

  const std::vector<std::string>& header() const { return header_; }
  size_t num_columns() const { return header_.size(); }
  /// Data rows (header excluded).
  size_t num_rows() const { return rows_.size(); }

  /// Cell of data row `row` (0-based, header excluded). Checked.
  const std::string& cell(size_t row, size_t col) const;

  /// Index of a header column, or -1.
  int ColumnIndex(const std::string& name) const;

  /// The cell parsed as a finite double; InvalidArgument naming the
  /// 1-based CSV line and the column header otherwise.
  Result<double> NumericCell(size_t row, size_t col) const;

  /// The cell parsed as a 64-bit integer (no fractional part, no
  /// precision loss through a double round-trip).
  Result<int64_t> IntegerCell(size_t row, size_t col) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::unordered_map<std::string, int> column_index_;
};

}  // namespace rvar

#endif  // RVAR_COMMON_CSV_H_
