// Copyright 2026 The rvar Authors.
//
// Small string helpers used across the library (formatting numbers for
// reports, joining/splitting, concatenation).

#ifndef RVAR_COMMON_STRINGS_H_
#define RVAR_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace rvar {

/// Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  ((void)(os << args), ...);
  return os.str();
}

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

/// Formats a fraction in [0,1] as a percentage, e.g. 0.1523 -> "15.23%".
std::string FormatPercent(double fraction, int digits = 2);

/// Formats a count with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatCount(int64_t v);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace rvar

#endif  // RVAR_COMMON_STRINGS_H_
