#include "common/strings.h"

#include <cmath>
#include <cstdio>

namespace rvar {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatPercent(double fraction, int digits) {
  return FormatDouble(fraction * 100.0, digits) + "%";
}

std::string FormatCount(int64_t v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  const size_t n = digits.size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return neg ? "-" + out : out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace rvar
