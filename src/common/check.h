// Copyright 2026 The rvar Authors.
//
// RVAR_CHECK: fatal assertions for programmer errors (invariant violations,
// out-of-contract calls). These are distinct from Status, which reports
// recoverable, data-dependent failures. Checks are always on.

#ifndef RVAR_COMMON_CHECK_H_
#define RVAR_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace rvar {
namespace internal {

/// Accumulates a failure message and aborts the process on destruction.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "RVAR_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rvar

#define RVAR_CHECK(condition)                                       \
  while (!(condition))                                              \
  ::rvar::internal::CheckFailureStream(#condition, __FILE__, __LINE__)

#define RVAR_CHECK_EQ(a, b) RVAR_CHECK((a) == (b))
#define RVAR_CHECK_NE(a, b) RVAR_CHECK((a) != (b))
#define RVAR_CHECK_LT(a, b) RVAR_CHECK((a) < (b))
#define RVAR_CHECK_LE(a, b) RVAR_CHECK((a) <= (b))
#define RVAR_CHECK_GT(a, b) RVAR_CHECK((a) > (b))
#define RVAR_CHECK_GE(a, b) RVAR_CHECK((a) >= (b))

#endif  // RVAR_COMMON_CHECK_H_
