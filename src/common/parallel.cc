#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/check.h"

namespace rvar {
namespace {

// True on threads owned by the pool, and on a caller thread while it owns
// an active region; nested regions run inline so a worker never blocks on
// peers queued behind it and an owner never re-enters the region lock.
thread_local bool t_pool_worker = false;

int DefaultThreads() {
  if (const char* env = std::getenv("RVAR_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// A fixed pool running one parallel region at a time. The region owner
// participates in chunk execution, so `configured` threads means the owner
// plus (configured - 1) workers.
class Pool {
 public:
  static Pool& Get() {
    static Pool* pool = new Pool();  // leaked: workers may outlive statics
    return *pool;
  }

  int threads() {
    std::lock_guard<std::mutex> lk(mu_);
    return configured_;
  }

  void SetThreads(int n) {
    RVAR_CHECK(!t_pool_worker) << "SetParallelThreads inside parallel region";
    std::lock_guard<std::mutex> region(region_mu_);
    StopWorkers();
    std::lock_guard<std::mutex> lk(mu_);
    configured_ = n <= 0 ? DefaultThreads() : n;
  }

  void Run(size_t num_chunks, const std::function<void(size_t)>& body) {
    if (num_chunks == 0) return;
    if (t_pool_worker || num_chunks == 1 || threads() <= 1) {
      for (size_t c = 0; c < num_chunks; ++c) body(c);
      return;
    }
    // One region at a time; concurrent callers (e.g. tests driving the
    // ShapeService from many client threads) serialize here and each still
    // computes its own chunked result.
    std::lock_guard<std::mutex> region(region_mu_);
    EnsureWorkers();
    t_pool_worker = true;  // nested regions on this thread run inline

    std::unique_lock<std::mutex> lk(mu_);
    body_ = &body;
    next_ = 0;
    done_ = 0;
    total_ = num_chunks;
    work_cv_.notify_all();
    // The owner drains chunks alongside the workers.
    while (next_ < total_) {
      const size_t c = next_++;
      lk.unlock();
      body(c);
      lk.lock();
      ++done_;
    }
    done_cv_.wait(lk, [&] { return done_ == total_; });
    body_ = nullptr;
    lk.unlock();
    t_pool_worker = false;
  }

 private:
  Pool() : configured_(DefaultThreads()) {}

  // Called with region_mu_ held.
  void EnsureWorkers() {
    std::unique_lock<std::mutex> lk(mu_);
    const size_t want =
        configured_ > 0 ? static_cast<size_t>(configured_ - 1) : 0;
    while (workers_.size() < want) {
      workers_.emplace_back([this] { WorkerMain(); });
    }
  }

  void StopWorkers() {
    std::vector<std::thread> stale;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
      stale.swap(workers_);
      work_cv_.notify_all();
    }
    for (std::thread& t : stale) t.join();
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = false;
  }

  void WorkerMain() {
    t_pool_worker = true;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      work_cv_.wait(lk, [&] {
        return stop_ || (body_ != nullptr && next_ < total_);
      });
      if (stop_) return;
      while (body_ != nullptr && next_ < total_) {
        const size_t c = next_++;
        const std::function<void(size_t)>* body = body_;
        lk.unlock();
        (*body)(c);
        lk.lock();
        if (++done_ == total_) done_cv_.notify_all();
      }
    }
  }

  std::mutex region_mu_;  // serializes whole regions
  std::mutex mu_;         // protects everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  int configured_;
  bool stop_ = false;
  const std::function<void(size_t)>* body_ = nullptr;
  size_t next_ = 0;
  size_t done_ = 0;
  size_t total_ = 0;
};

}  // namespace

int ParallelThreads() { return Pool::Get().threads(); }

void SetParallelThreads(int n) { Pool::Get().SetThreads(n); }

namespace internal {

std::vector<std::pair<size_t, size_t>> ChunkRanges(size_t n, size_t grain) {
  std::vector<std::pair<size_t, size_t>> ranges;
  if (n == 0) return ranges;
  const size_t step = grain == 0 ? 1 : grain;
  ranges.reserve((n + step - 1) / step);
  for (size_t begin = 0; begin < n; begin += step) {
    ranges.emplace_back(begin, std::min(n, begin + step));
  }
  return ranges;
}

void RunChunks(size_t num_chunks, const std::function<void(size_t)>& body) {
  Pool::Get().Run(num_chunks, body);
}

}  // namespace internal
}  // namespace rvar
