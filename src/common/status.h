// Copyright 2026 The rvar Authors.
//
// Status: the error-handling currency of the rvar library. Public APIs that
// can fail return Status (or Result<T>, see result.h) instead of throwing.
// This follows the RocksDB / Arrow idiom for database-systems C++.

#ifndef RVAR_COMMON_STATUS_H_
#define RVAR_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace rvar {

/// \brief Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kIOError = 9,
};

/// \brief Human-readable name for a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief The result of an operation that may fail.
///
/// A Status is cheap to construct in the OK case (no allocation) and carries
/// a code plus a message otherwise. It must be inspected via ok() / code();
/// ignoring a non-OK Status is a programming error by convention.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// Renders as "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace rvar

/// Propagates a non-OK Status to the caller. Usable only in functions that
/// return Status (or a type constructible from Status, e.g. Result<T>).
#define RVAR_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::rvar::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (false)

#endif  // RVAR_COMMON_STATUS_H_
