// Copyright 2026 The rvar Authors.
//
// Deterministic data parallelism (DESIGN.md §8). A lazily-started fixed
// thread pool executes work in *chunks* whose boundaries depend only on the
// problem size and the caller's grain — never on the thread count — and
// ParallelReduce merges per-chunk accumulators in chunk-index order. A
// computation expressed through these primitives therefore produces
// bit-identical results (including floating-point rounding) whether it runs
// on 1 thread, 8 threads, or inline, which is what keeps the library's
// seed-reproducibility guarantee (DESIGN.md §5) intact on the parallel hot
// paths.
//
// Thread count resolution: SetParallelThreads(n) wins; otherwise the
// RVAR_THREADS environment variable (read once); otherwise
// std::thread::hardware_concurrency(). A count of 1 (or a nested parallel
// region) runs the same chunked computation inline on the calling thread.

#ifndef RVAR_COMMON_PARALLEL_H_
#define RVAR_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace rvar {

/// Number of worker threads parallel regions may use (>= 1).
int ParallelThreads();

/// Overrides the worker count; n <= 0 restores the default (RVAR_THREADS
/// env or hardware concurrency). Joins idle pool workers and restarts the
/// pool lazily at the new width. Must not be called from inside a parallel
/// region. Chunk boundaries do not depend on this value, so changing it
/// never changes results — only wall-clock.
void SetParallelThreads(int n);

namespace internal {

/// Deterministic chunk boundaries: ceil(n / grain) half-open ranges of at
/// most `grain` indices each, in index order. Depends only on (n, grain).
std::vector<std::pair<size_t, size_t>> ChunkRanges(size_t n, size_t grain);

/// Runs body(chunk_index) for every chunk in [0, num_chunks), distributing
/// chunks over the pool. Chunks may execute in any order and concurrently;
/// callers must make per-chunk work independent. Runs inline (in ascending
/// chunk order) when the pool has 1 thread, num_chunks <= 1, or the caller
/// is itself a pool worker (nested regions never deadlock).
void RunChunks(size_t num_chunks, const std::function<void(size_t)>& body);

}  // namespace internal

/// Runs body(begin, end) over deterministic chunks covering [0, n). Each
/// index is visited exactly once; chunks may run concurrently, so bodies
/// must only touch disjoint state (e.g. output slot i for index i).
/// `grain` is the maximum chunk size; pick it for work granularity, not
/// for the machine — boundaries must stay machine-independent.
inline void ParallelFor(size_t n, size_t grain,
                        const std::function<void(size_t, size_t)>& body) {
  const auto ranges = internal::ChunkRanges(n, grain);
  internal::RunChunks(ranges.size(), [&](size_t c) {
    body(ranges[c].first, ranges[c].second);
  });
}

/// Deterministic ordered reduction over [0, n): `chunk(begin, end)` returns
/// a per-chunk accumulator of type T (default-constructed slots are
/// overwritten), and `merge(acc, part)` folds the chunk results together
/// strictly in chunk-index order starting from `identity`. Because both the
/// chunk boundaries and the merge order are fixed, the result — including
/// floating-point rounding — is independent of the thread count.
template <typename T, typename ChunkFn, typename MergeFn>
T ParallelReduce(size_t n, size_t grain, T identity, ChunkFn&& chunk,
                 MergeFn&& merge) {
  const auto ranges = internal::ChunkRanges(n, grain);
  if (ranges.empty()) return identity;
  std::vector<T> partial(ranges.size());
  internal::RunChunks(ranges.size(), [&](size_t c) {
    partial[c] = chunk(ranges[c].first, ranges[c].second);
  });
  T acc = std::move(identity);
  for (T& part : partial) acc = merge(std::move(acc), std::move(part));
  return acc;
}

}  // namespace rvar

#endif  // RVAR_COMMON_PARALLEL_H_
